//! Fleet lifecycle: attach → run → detach, admission at the slot budget,
//! restart under load, and backpressure stall/drop accounting.

use std::sync::Arc;

use synergy::{Scheme, SystemConfig};
use synergy_fleet::{
    BoundedSink, DeviceSink, FleetConfig, FleetError, FleetManager, MissionId, NullSink,
    TenantState,
};

fn mission_cfg(mission: u64, duration_secs: f64) -> SystemConfig {
    SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .mission(MissionId(mission))
        .seed(1000 + mission)
        .duration_secs(duration_secs)
        .internal_rate_per_min(60.0)
        .external_rate_per_min(6.0)
        .trace(false)
        .build()
}

#[test]
fn attach_run_detach_round_trip() {
    let fleet = FleetManager::new(
        FleetConfig::default().with_slots(8).with_workers(2),
        Arc::new(NullSink::new()),
    );
    for m in 1..=3 {
        fleet.attach(mission_cfg(m, 30.0)).unwrap();
    }
    assert_eq!(fleet.resident(), 3);
    assert_eq!(fleet.run_until_idle(), 3);
    for m in 1..=3u64 {
        assert_eq!(fleet.state(MissionId(m)).unwrap(), TenantState::Completed);
    }
    for m in 1..=3u64 {
        let report = fleet.detach(MissionId(m)).unwrap();
        assert_eq!(report.mission, MissionId(m));
        assert!(
            report.verdicts_hold,
            "fault-free mission must hold verdicts"
        );
        assert!(report.metrics.messages_delivered > 0);
        assert!(report.stats.events > 0);
        assert!(report.stats.latency_ms > 0.0);
    }
    assert_eq!(fleet.resident(), 0);
    assert_eq!(fleet.stats().attached(), 3);
    assert_eq!(fleet.stats().detached(), 3);
    assert_eq!(fleet.stats().completed(), 3);
    assert_eq!(
        fleet.detach(MissionId(1)).unwrap_err(),
        FleetError::UnknownMission(MissionId(1))
    );
}

#[test]
fn admission_rejects_at_the_slot_budget_and_recovers_after_detach() {
    let fleet = FleetManager::new(
        FleetConfig::default().with_slots(2).with_workers(1),
        Arc::new(NullSink::new()),
    );
    fleet.attach(mission_cfg(1, 5.0)).unwrap();
    // A duplicate attach is its own error and must not leak the slot it
    // briefly claimed: mission 2 still fits afterwards.
    assert_eq!(
        fleet.attach(mission_cfg(1, 5.0)).unwrap_err(),
        FleetError::AlreadyAttached(MissionId(1))
    );
    fleet.attach(mission_cfg(2, 5.0)).unwrap();
    assert_eq!(
        fleet.attach(mission_cfg(3, 5.0)).unwrap_err(),
        FleetError::AdmissionRejected { limit: 2 }
    );
    assert_eq!(fleet.stats().admission_rejections(), 1);
    fleet.run_until_idle();
    fleet.detach(MissionId(1)).unwrap();
    fleet.attach(mission_cfg(3, 5.0)).unwrap();
    assert_eq!(fleet.resident(), 2);
}

#[test]
fn restart_under_load_reruns_the_mission() {
    let fleet = FleetManager::new(
        FleetConfig::default().with_slots(4).with_workers(2),
        Arc::new(NullSink::new()),
    );
    for m in 1..=4 {
        fleet.attach(mission_cfg(m, 30.0)).unwrap();
    }
    std::thread::scope(|scope| {
        let fleet = &fleet;
        let worker = scope.spawn(move || fleet.run_until_idle());
        // Restart M2 while the scheduler is (probably) mid-flight; the
        // restart is legal from Active, Stalled and Completed alike, so
        // there is no race on lifecycle legality — only on how much of
        // the first run it wipes.
        fleet.restart(MissionId(2)).unwrap();
        worker.join().unwrap();
    });
    // If the restart landed after the scheduler already went idle, finish
    // the rerun now.
    fleet.run_until_idle();
    assert_eq!(fleet.stats().restarted(), 1);
    for m in 1..=4u64 {
        assert_eq!(fleet.state(MissionId(m)).unwrap(), TenantState::Completed);
    }
    let report = fleet.detach(MissionId(2)).unwrap();
    assert_eq!(report.stats.restarts, 1);
    assert!(report.verdicts_hold);
}

#[test]
fn shutdown_rejects_new_attaches_but_keeps_residents() {
    let fleet = FleetManager::new(
        FleetConfig::default().with_slots(4).with_workers(1),
        Arc::new(NullSink::new()),
    );
    fleet.attach(mission_cfg(1, 5.0)).unwrap();
    fleet.shut_down();
    assert_eq!(
        fleet.attach(mission_cfg(2, 5.0)).unwrap_err(),
        FleetError::ShuttingDown
    );
    assert_eq!(fleet.run_until_idle(), 1);
    assert!(fleet.detach(MissionId(1)).unwrap().verdicts_hold);
}

#[test]
fn backpressure_stalls_then_drops_when_nobody_drains() {
    // Capacity 2 and no consumer: the first two device messages land,
    // every later one stalls through the whole retry budget and is shed.
    let sink = Arc::new(BoundedSink::new(2));
    let mut cfg = FleetConfig::default().with_slots(1).with_workers(1);
    cfg.retry_start = std::time::Duration::from_micros(50);
    cfg.retry_cap = std::time::Duration::from_micros(400);
    cfg.retry_budget = Some(3);
    let fleet = FleetManager::new(cfg, Arc::clone(&sink) as Arc<dyn DeviceSink>);
    fleet.attach(mission_cfg(1, 120.0)).unwrap();
    assert_eq!(fleet.run_until_idle(), 1);
    let report = fleet.detach(MissionId(1)).unwrap();
    let produced = report.stats.device_msgs + report.stats.drops;
    assert!(produced > 2, "mission must produce more than the capacity");
    assert_eq!(report.stats.device_msgs, 2, "only the capacity landed");
    assert_eq!(report.stats.drops, produced - 2);
    assert!(
        report.stats.stalls >= 3 * report.stats.drops,
        "every drop burns the whole retry budget first ({} stalls, {} drops)",
        report.stats.stalls,
        report.stats.drops
    );
    assert_eq!(fleet.stats().drops(), report.stats.drops);
    assert_eq!(fleet.stats().stalls(), report.stats.stalls);
    assert_eq!(sink.len(), 2);
}

#[test]
fn backpressure_recovers_without_drops_when_a_consumer_drains() {
    let sink = Arc::new(BoundedSink::new(1));
    let mut cfg = FleetConfig::default().with_slots(1).with_workers(1);
    cfg.retry_start = std::time::Duration::from_micros(50);
    cfg.retry_cap = std::time::Duration::from_millis(1);
    cfg.retry_budget = None; // retry forever: the consumer always drains
    let fleet = FleetManager::new(cfg, Arc::clone(&sink) as Arc<dyn DeviceSink>);
    fleet.attach(mission_cfg(1, 120.0)).unwrap();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let drained = std::thread::scope(|scope| {
        let (stop_ref, sink_ref) = (&stop, &sink);
        let drainer = scope.spawn(move || {
            let mut drained = 0u64;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                drained += sink_ref.drain().len() as u64;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            drained + sink_ref.drain().len() as u64
        });
        assert_eq!(fleet.run_until_idle(), 1);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        drainer.join().unwrap()
    });
    let report = fleet.detach(MissionId(1)).unwrap();
    assert_eq!(report.stats.drops, 0, "a draining consumer loses nothing");
    assert_eq!(drained, report.stats.device_msgs);
    assert!(report.verdicts_hold);
}
