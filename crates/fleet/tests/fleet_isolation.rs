//! Fault isolation between tenants: a tenant killed mid-checkpoint (its
//! crash tears a stable write, the worst case the paper's blocking
//! periods exist for) must not delay a healthy tenant's progress beyond
//! the scheduler's quantum bound, and must not perturb the healthy
//! tenant's device stream at all.
//!
//! The crash instant is found the same way the cluster verifier places
//! its mid-round kills: an ε-scan around a TB grid point until the
//! reference run records a torn stable write.

use std::sync::Arc;

use synergy::{Scheme, System, SystemConfig};
use synergy_fleet::{device_payloads, FleetConfig, FleetManager, MissionId, NullSink, TenantState};

const DURATION_SECS: f64 = 60.0;
const GRID_SECS: f64 = 30.0; // 3 · Δ with the default 10 s TB interval

fn crasher_cfg(mission: MissionId, fault_at: f64) -> SystemConfig {
    SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .mission(mission)
        .seed(4242)
        .duration_secs(DURATION_SECS)
        .internal_rate_per_min(120.0)
        .external_rate_per_min(6.0)
        .trace(false)
        .hardware_fault_at_secs(fault_at)
        .build()
}

fn healthy_cfg(mission: MissionId) -> SystemConfig {
    SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .mission(mission)
        .seed(7777)
        .duration_secs(DURATION_SECS)
        .internal_rate_per_min(120.0)
        .external_rate_per_min(6.0)
        .trace(false)
        .build()
}

/// Scans crash offsets around the grid point until the (standalone)
/// mission records a torn stable write — the crash landed inside the
/// blocking period, i.e. mid-checkpoint.
fn find_mid_checkpoint_crash() -> Option<f64> {
    let (lo, hi, step) = (-0.002, 0.006, 0.0002);
    let n = ((hi - lo) / step) as u32;
    (0..=n)
        .map(|i| GRID_SECS + lo + step * f64::from(i))
        .find(|&at| {
            let mut probe = System::new(crasher_cfg(MissionId::SOLO, at));
            probe.run();
            probe.metrics().torn_writes >= 1
        })
}

#[test]
fn a_tenant_killed_mid_checkpoint_never_stalls_a_healthy_tenant() {
    let fault_at = find_mid_checkpoint_crash()
        .expect("the ε-scan must find a crash instant inside a blocking period");

    let crasher = MissionId(1);
    let healthy = MissionId(2);
    // One worker and a small quantum: both tenants share a single
    // scheduler thread, so any cross-tenant stall would show up as a
    // visit gap on the healthy tenant.
    let fleet = FleetManager::new(
        FleetConfig::default()
            .with_slots(2)
            .with_workers(1)
            .with_quantum(64)
            .with_capture(),
        Arc::new(NullSink::new()),
    );
    fleet.attach(crasher_cfg(crasher, fault_at)).unwrap();
    fleet.attach(healthy_cfg(healthy)).unwrap();

    // Drive the fleet deterministically, one pass at a time.
    let mut passes = 0u64;
    while fleet.state(crasher).unwrap() != TenantState::Completed
        || fleet.state(healthy).unwrap() != TenantState::Completed
    {
        fleet.step_pass();
        passes += 1;
        assert!(passes < 1_000_000, "fleet failed to converge");
    }

    let crasher_report = fleet.detach(crasher).unwrap();
    let healthy_report = fleet.detach(healthy).unwrap();

    // The crash really was mid-checkpoint and really was recovered.
    assert_eq!(crasher_report.metrics.torn_writes, 1);
    assert!(crasher_report.metrics.hardware_recoveries >= 1);
    assert!(crasher_report.verdicts_hold);

    // Isolation bound: the healthy tenant was visited on every scheduler
    // pass while it ran — the crasher's recovery never cost it a turn.
    assert_eq!(
        healthy_report.stats.max_pass_gap, 1,
        "healthy tenant skipped a pass while the crasher recovered"
    );

    // And its mission is byte-identical to running alone: the crash next
    // door is invisible in its device stream and metrics.
    let mut solo = System::new(healthy_cfg(MissionId::SOLO));
    solo.run();
    assert_eq!(healthy_report.captured, device_payloads(&solo));
    assert_eq!(&healthy_report.metrics, solo.metrics());
    assert!(healthy_report.verdicts_hold);
}
