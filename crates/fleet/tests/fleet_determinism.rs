//! The fleet's headline invariant: a tenant's mission is byte-identical
//! to a standalone simulator run of the same seed and config. Sixteen
//! tenants — fault-free, hardware-faulted and software-faulted — run
//! multiplexed over a multi-worker fleet, and each one's device stream
//! and full run metrics must equal sixteen independent single-mission
//! simulator runs. The mission id is the only difference between the two
//! sides, proving the tag never leaks into protocol behaviour.

use std::sync::Arc;

use synergy::{Scheme, System, SystemConfig};
use synergy_fleet::{device_payloads, FleetConfig, FleetManager, MissionId, NullSink};

const TENANTS: u64 = 16;

fn mission_cfg(i: u64, mission: MissionId) -> SystemConfig {
    let mut builder = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .mission(mission)
        .seed(9000 + i)
        .duration_secs(90.0)
        .internal_rate_per_min(60.0)
        .external_rate_per_min(6.0)
        .trace(false);
    if i.is_multiple_of(2) {
        builder = builder.hardware_fault_at_secs(45.0);
    }
    if i.is_multiple_of(3) {
        builder = builder.software_fault_at_secs(20.0);
    }
    builder.build()
}

#[test]
fn sixteen_tenants_match_sixteen_solo_simulator_runs_byte_for_byte() {
    let fleet = FleetManager::new(
        FleetConfig::default()
            .with_slots(TENANTS as usize)
            .with_workers(4)
            .with_capture(),
        Arc::new(NullSink::new()),
    );
    for i in 1..=TENANTS {
        fleet.attach(mission_cfg(i, MissionId(i))).unwrap();
    }
    assert_eq!(fleet.run_until_idle(), TENANTS);

    for i in 1..=TENANTS {
        let report = fleet.detach(MissionId(i)).unwrap();
        let mut solo = System::new(mission_cfg(i, MissionId::SOLO));
        solo.run();
        assert_eq!(
            report.captured,
            device_payloads(&solo),
            "tenant {i}: device stream diverged from the solo run"
        );
        assert_eq!(
            &report.metrics,
            solo.metrics(),
            "tenant {i}: run metrics diverged from the solo run"
        );
        assert_eq!(
            report.verdicts_hold,
            solo.verdicts().all_hold(),
            "tenant {i}: verdicts diverged from the solo run"
        );
        assert!(
            !report.captured.is_empty(),
            "tenant {i}: the comparison must cover a non-empty stream"
        );
    }
    // The faulted tenants really exercised recovery, so the equality
    // above covered rollback paths, not just quiet missions.
    let (sw, hw) = fleet.stats().rollbacks();
    assert!(sw > 0, "some tenant must have taken a software rollback");
    assert!(hw > 0, "some tenant must have taken a hardware rollback");
}
