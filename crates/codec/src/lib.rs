//! A compact, non-self-describing binary serialization format.
//!
//! The format is deliberately simple so that checkpoint contents remain
//! stable across releases (rollback must be able to read a checkpoint taken
//! by an earlier run of the same binary):
//!
//! * fixed-width integers are little-endian, `usize` travels as `u64`;
//! * `bool` is one byte, `0` or `1`;
//! * floats are their IEEE-754 bit patterns, little-endian;
//! * `char` is its scalar value as a `u32`;
//! * strings and byte slices are a `u64` length followed by the raw bytes;
//! * sequences and maps are a `u64` element count followed by the elements;
//! * `Option<T>` is a tag byte (`0` = `None`, `1` = `Some`) then the value;
//! * structs and tuples are their fields in declaration order, no framing;
//! * enums are a `u32` variant index followed by the variant's fields.
//!
//! Implement [`Codec`] by hand or with the [`codec_struct!`] /
//! [`codec_newtype!`] macros.
//!
//! # Example
//!
//! ```rust
//! use synergy_codec::{from_bytes, to_bytes};
//!
//! let value = (7u64, vec![1u8, 2, 3], Some("hi".to_string()));
//! let bytes = to_bytes(&value).unwrap();
//! let back: (u64, Vec<u8>, Option<String>) = from_bytes(&bytes).unwrap();
//! assert_eq!(back, value);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Things that can go wrong encoding or decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// A free-form message from a `Codec` implementation.
    Message(String),
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// Decoding succeeded but input bytes remain.
    TrailingBytes,
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `u32` was not a valid `char`.
    InvalidChar(u32),
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// An enum variant index had no matching variant.
    InvalidVariant(u32),
    /// A length prefix exceeded the remaining input (hostile or corrupt).
    LengthOverflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Message(m) => write!(f, "{m}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte: {b}"),
            CodecError::InvalidChar(c) => write!(f, "invalid char scalar: {c}"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::InvalidOptionTag(t) => write!(f, "invalid Option tag: {t}"),
            CodecError::InvalidVariant(v) => write!(f, "invalid enum variant index: {v}"),
            CodecError::LengthOverflow => write!(f, "length prefix exceeds remaining input"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over the bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes one byte.
    pub fn take_byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Decodes a `u64` length prefix, validating it against the remaining
    /// input so hostile prefixes cannot trigger huge allocations. `min_width`
    /// is the smallest encoded size of one element.
    pub fn take_len(&mut self, min_width: usize) -> Result<usize, CodecError> {
        let len = u64::decode(self)?;
        let len = usize::try_from(len).map_err(|_| CodecError::LengthOverflow)?;
        if len.saturating_mul(min_width.max(1)) > self.remaining() {
            return Err(CodecError::LengthOverflow);
        }
        Ok(len)
    }
}

/// Binary encode/decode, with the layout documented at the crate root.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] describing malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes `value` to a byte vector.
///
/// # Errors
///
/// Encoding itself cannot fail; the `Result` keeps call sites uniform with
/// [`from_bytes`].
pub fn to_bytes<T: Codec>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    value.encode(&mut out);
    Ok(out)
}

/// Encodes `value` into `out`, clearing it first. The buffer's capacity is
/// retained across calls, so hot paths that serialize repeatedly (checkpoint
/// establishment, stable writes) can reuse one scratch allocation instead of
/// growing a fresh `Vec` every time.
///
/// # Errors
///
/// Encoding itself cannot fail; the `Result` keeps call sites uniform with
/// [`to_bytes`].
pub fn to_bytes_into<T: Codec>(value: &T, out: &mut Vec<u8>) -> Result<(), CodecError> {
    out.clear();
    value.encode(out);
    Ok(())
}

/// Decodes a `T` from `bytes`, requiring the input to be fully consumed.
///
/// # Errors
///
/// Any [`CodecError`]; [`CodecError::TrailingBytes`] when input remains
/// after the value.
pub fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes);
    }
    Ok(value)
}

/// Encodes a byte slice with the exact layout of `Vec<u8>` (a `u64` length
/// prefix followed by the raw bytes) in one bulk copy.
///
/// The generic `Vec<T>` impl encodes element by element, which for byte
/// payloads means one call per byte; hot paths (the live wire, checkpoint
/// images) should use this instead. The two encodings are byte-identical.
pub fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    (bytes.len() as u64).encode(out);
    out.extend_from_slice(bytes);
}

/// Decodes a byte vector encoded by [`encode_bytes`] or the generic
/// `Vec<u8>` impl (the layouts are identical) in one bulk copy.
///
/// # Errors
///
/// [`CodecError::LengthOverflow`] on a hostile length prefix,
/// [`CodecError::UnexpectedEof`] on truncated input.
pub fn decode_bytes(r: &mut Reader<'_>) -> Result<Vec<u8>, CodecError> {
    let len = r.take_len(1)?;
    Ok(r.take(len)?.to_vec())
}

macro_rules! codec_int {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let bytes = r.take(core::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("width checked")))
            }
        }
    )*};
}

codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        usize::try_from(u64::decode(r)?).map_err(|_| CodecError::LengthOverflow)
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidBool(other)),
        }
    }
}

impl Codec for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Codec for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let scalar = u32::decode(r)?;
        char::from_u32(scalar).ok_or(CodecError::InvalidChar(scalar))
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_len(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_len(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

/// `Arc<T>` is wire-transparent: it encodes exactly like `T`, so switching a
/// field to a shared pointer never changes the byte layout (checkpoint CRCs
/// and committed `results/` traces stay identical).
impl<T: Codec> Codec for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

/// `Arc<[T]>` is wire-identical to `Vec<T>` (u64 length prefix + elements).
impl<T: Codec> Codec for Arc<[T]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::InvalidOptionTag(other)),
        }
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_len(2)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(r)?);
        }
        items
            .try_into()
            .map_err(|_| CodecError::Message("array length mismatch".into()))
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

macro_rules! codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

codec_tuple!(A: 0);
codec_tuple!(A: 0, B: 1);
codec_tuple!(A: 0, B: 1, C: 2);
codec_tuple!(A: 0, B: 1, C: 2, D: 3);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// Implements [`Codec`] for a struct with named fields, encoding the listed
/// fields in order.
///
/// ```rust
/// struct Point { x: u32, y: u32 }
/// synergy_codec::codec_struct!(Point { x, y });
/// ```
#[macro_export]
macro_rules! codec_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::Codec for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $($crate::Codec::encode(&self.$field, out);)*
            }
            fn decode(
                r: &mut $crate::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::CodecError> {
                Ok(Self {
                    $($field: $crate::Codec::decode(r)?,)*
                })
            }
        }
    };
}

/// Implements [`Codec`] for a single-field tuple struct (newtype).
///
/// ```rust
/// struct Id(u64);
/// synergy_codec::codec_newtype!(Id);
/// ```
#[macro_export]
macro_rules! codec_newtype {
    ($ty:ty) => {
        impl $crate::Codec for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $crate::Codec::encode(&self.0, out);
            }
            fn decode(
                r: &mut $crate::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::CodecError> {
                Ok(Self($crate::Codec::decode(r)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + core::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn arc_encodes_like_inner() {
        let v: Vec<u32> = vec![1, 2, 3];
        let shared: Arc<[u32]> = v.clone().into();
        assert_eq!(to_bytes(&shared).unwrap(), to_bytes(&v).unwrap());
        let boxed = Arc::new(String::from("layout"));
        assert_eq!(
            to_bytes(&boxed).unwrap(),
            to_bytes(&String::from("layout")).unwrap()
        );
        let back: Arc<[u32]> = from_bytes(&to_bytes(&shared).unwrap()).unwrap();
        assert_eq!(back.as_ref(), v.as_slice());
        roundtrip(Arc::new(42u64));
    }

    #[test]
    fn bulk_bytes_match_generic_vec_layout() {
        for payload in [vec![], vec![7u8], (0..=255u8).collect::<Vec<u8>>()] {
            let mut bulk = Vec::new();
            encode_bytes(&payload, &mut bulk);
            assert_eq!(bulk, to_bytes(&payload).unwrap());
            let mut r = Reader::new(&bulk);
            assert_eq!(decode_bytes(&mut r).unwrap(), payload);
            assert_eq!(r.remaining(), 0);
        }
        // Hostile prefix must not allocate.
        let bytes = to_bytes(&u64::MAX).unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_bytes(&mut r), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn to_bytes_into_reuses_buffer() {
        let mut scratch = Vec::with_capacity(64);
        to_bytes_into(&vec![1u8, 2, 3], &mut scratch).unwrap();
        assert_eq!(scratch, to_bytes(&vec![1u8, 2, 3]).unwrap());
        let cap = scratch.capacity();
        let ptr = scratch.as_ptr();
        to_bytes_into(&vec![9u8], &mut scratch).unwrap();
        assert_eq!(scratch, to_bytes(&vec![9u8]).unwrap());
        assert_eq!(scratch.capacity(), cap, "capacity retained across calls");
        assert_eq!(scratch.as_ptr(), ptr, "no reallocation on shrink");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(123_456_789u32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(-5i8);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f32);
        roundtrip(-0.125f64);
        roundtrip('λ');
        roundtrip("héllo".to_string());
        roundtrip(42usize);
    }

    #[test]
    fn integers_are_fixed_width_little_endian() {
        assert_eq!(to_bytes(&1u16).unwrap(), vec![1, 0]);
        assert_eq!(to_bytes(&1u32).unwrap(), vec![1, 0, 0, 0]);
        assert_eq!(to_bytes(&0x0102_0304u32).unwrap(), vec![4, 3, 2, 1]);
        assert_eq!(to_bytes(&1u64).unwrap(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        // usize travels as u64 regardless of platform width.
        assert_eq!(to_bytes(&1usize).unwrap(), to_bytes(&1u64).unwrap());
    }

    #[test]
    fn string_layout_is_length_prefixed() {
        let bytes = to_bytes(&"ab".to_string()).unwrap();
        assert_eq!(bytes, vec![2, 0, 0, 0, 0, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn option_layout_is_tagged() {
        assert_eq!(to_bytes(&Option::<u8>::None).unwrap(), vec![0]);
        assert_eq!(to_bytes(&Some(7u8)).unwrap(), vec![1, 7]);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some(vec![false, true]));
        roundtrip(Option::<u64>::None);
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), vec![9u8]);
        map.insert("z".to_string(), vec![]);
        roundtrip(map);
        roundtrip([3u32, 2, 1]);
        roundtrip((1u8, "x".to_string(), Some(2u64), vec![0u8; 4]));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let value: Vec<(String, u64, Option<i32>, Vec<u8>)> = vec![
            ("a".into(), 1, None, vec![1, 2]),
            ("b".into(), u64::MAX, Some(-9), vec![]),
        ];
        roundtrip(value);
    }

    #[test]
    fn encoding_is_deterministic() {
        let value = (vec![("x".to_string(), 3u64)], Some(false));
        assert_eq!(to_bytes(&value).unwrap(), to_bytes(&value).unwrap());
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = to_bytes(&12345u64).unwrap();
        assert_eq!(
            from_bytes::<u64>(&bytes[..4]),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        assert_eq!(from_bytes::<u8>(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A length prefix of u64::MAX must not allocate.
        let bytes = to_bytes(&u64::MAX).unwrap();
        assert_eq!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(CodecError::LengthOverflow)
        );
        assert_eq!(
            from_bytes::<String>(&bytes),
            Err(CodecError::LengthOverflow)
        );
    }

    #[test]
    fn invalid_bool_and_option_tags_rejected() {
        assert_eq!(from_bytes::<bool>(&[2]), Err(CodecError::InvalidBool(2)));
        assert_eq!(
            from_bytes::<Option<u8>>(&[9]),
            Err(CodecError::InvalidOptionTag(9))
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = to_bytes(&2u64).unwrap();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(from_bytes::<String>(&bytes), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn invalid_char_rejected() {
        let bytes = to_bytes(&0xD800u32).unwrap(); // a lone surrogate
        assert_eq!(
            from_bytes::<char>(&bytes),
            Err(CodecError::InvalidChar(0xD800))
        );
    }

    #[test]
    fn garbage_never_panics() {
        // Every error path must be a clean Err, whatever the input.
        for len in 0..64usize {
            let bytes: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let _ = from_bytes::<Vec<(String, u64)>>(&bytes);
            let _ = from_bytes::<Option<Vec<bool>>>(&bytes);
            let _ = from_bytes::<(u8, u16, u32, u64)>(&bytes);
            let _ = from_bytes::<BTreeMap<String, Vec<u8>>>(&bytes);
        }
    }

    #[test]
    fn macro_struct_and_newtype() {
        #[derive(Debug, PartialEq)]
        struct Id(u64);
        codec_newtype!(Id);

        #[derive(Debug, PartialEq)]
        struct Record {
            id: Id,
            tags: Vec<String>,
            live: bool,
        }
        codec_struct!(Record { id, tags, live });

        let record = Record {
            id: Id(8),
            tags: vec!["a".into()],
            live: true,
        };
        let bytes = to_bytes(&record).unwrap();
        let back: Record = from_bytes(&bytes).unwrap();
        assert_eq!(back, record);
    }
}
