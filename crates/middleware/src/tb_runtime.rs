//! Real-time adapted-TB checkpointing for the threaded and cluster
//! runtimes.
//!
//! The paper's concluding remarks plan to "incorporate the
//! protocol-coordination scheme into the GSU Middleware"; this module does
//! that for the driver runtimes: each node owns a [`TbEngine`], persists
//! coordinated checkpoints into a [`Stable`] store, and bridges the blocking
//! periods into the MDCD engine exactly like the simulator driver does.
//!
//! Two driving modes share the engine and store plumbing:
//!
//! * **Wall-clock** ([`TbRuntime::new`]): deadlines map onto `Instant`s and
//!   the node loop calls [`tick`](TbRuntime::tick) whenever one is due — the
//!   threaded middleware's mode, with the in-memory [`StableStore`].
//! * **Commanded** ([`TbRuntime::commanded`]): an external coordinator (the
//!   cluster orchestrator) decides when checkpoint rounds begin
//!   ([`begin_checkpoint`](TbRuntime::begin_checkpoint)) and commit
//!   ([`commit_checkpoint`](TbRuntime::commit_checkpoint)), which makes a
//!   distributed mission deterministic enough to compare against a
//!   simulator run. Deadline bookkeeping stays inside the engine (each
//!   commanded round is fed as its own timer expiry), and the store is
//!   typically a durable `DiskStableStore`.
//!
//! Wall-clock notes: thread clocks share one time base, so `δ` and `ρ` are
//! configuration inputs to the blocking-period formula rather than measured
//! properties; acknowledgment tracking is delegated to the transport layer
//! and the saved unacked set is the node's ack tracker contents at write
//! time.

use std::time::{Duration, Instant};

use synergy::payload::CheckpointPayload;
use synergy_clocks::LocalTime;
use synergy_net::CkptSeqNo;
use synergy_storage::{Checkpoint, Stable, StableStore};
use synergy_tb::{Action as TbAction, ContentsChoice, Event as TbEvent, TbConfig, TbEngine};

/// Real-time TB state for one node, over any [`Stable`] backend.
pub struct TbRuntime<S: Stable = StableStore> {
    engine: TbEngine,
    pub(crate) stable: S,
    epoch: Instant,
    next_timer: Option<Instant>,
    blocking_until: Option<Instant>,
    commanded: bool,
    commits: u64,
    replacements: u64,
    /// Stable operations that failed (transient I/O) and await retry, in
    /// order. The engine's view (ndc, blocking state) advances when its
    /// actions are handed out, so a failed store operation must eventually
    /// succeed for disk and engine to agree again; [`retry_stable`]
    /// (driven by the node loop) is how it does.
    pending: Vec<PendingStable>,
    stable_retries: u64,
}

/// A stable-store operation waiting to be retried.
enum PendingStable {
    /// `begin_write` failed; retry with this checkpoint.
    Begin(Checkpoint),
    /// `commit_write` failed; the in-flight write (or, if the begin is also
    /// pending, the checkpoint queued before this) still needs committing.
    Commit(CkptSeqNo),
}

/// What the node loop must do after a TB transition.
pub enum TbEffect {
    /// A blocking period started: forward `BlockingStarted` to MDCD.
    BlockingStarted,
    /// A blocking period ended: forward `StableCheckpointCommitted(ndc)`
    /// and `BlockingEnded` to MDCD.
    Committed(CkptSeqNo),
}

impl TbRuntime<StableStore> {
    /// Wall-clock mode over the in-memory store (the threaded middleware's
    /// configuration).
    pub fn new(config: TbConfig) -> Self {
        TbRuntime::wall_clock(config, StableStore::new())
    }
}

impl<S: Stable> TbRuntime<S> {
    /// Wall-clock mode over `stable`: deadlines fire via
    /// [`tick`](Self::tick) as real time passes.
    pub fn wall_clock(config: TbConfig, stable: S) -> Self {
        TbRuntime::build(config, stable, false)
    }

    /// Commanded mode over `stable`: nothing fires on its own; the caller
    /// drives rounds with [`begin_checkpoint`](Self::begin_checkpoint) and
    /// [`commit_checkpoint`](Self::commit_checkpoint).
    pub fn commanded(config: TbConfig, stable: S) -> Self {
        TbRuntime::build(config, stable, true)
    }

    fn build(config: TbConfig, stable: S, commanded: bool) -> Self {
        let engine = TbEngine::new(config);
        let epoch = Instant::now();
        let mut rt = TbRuntime {
            engine,
            stable,
            epoch,
            next_timer: None,
            blocking_until: None,
            commanded,
            commits: 0,
            replacements: 0,
            pending: Vec::new(),
            stable_retries: 0,
        };
        let actions = rt.engine.start();
        rt.absorb_schedule(actions);
        rt
    }

    fn local_now(&self) -> LocalTime {
        LocalTime::from_nanos(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn to_instant(&self, local: LocalTime) -> Instant {
        self.epoch + Duration::from_nanos(local.as_nanos())
    }

    fn absorb_schedule(&mut self, actions: Vec<TbAction>) {
        if self.commanded {
            return;
        }
        for a in actions {
            if let TbAction::ScheduleTimer { at } = a {
                self.next_timer = Some(self.to_instant(at));
            }
        }
    }

    /// The next instant the node loop must wake up for, if any. Always
    /// `None` in commanded mode.
    pub fn next_deadline(&self) -> Option<Instant> {
        match (self.next_timer, self.blocking_until) {
            (Some(t), Some(b)) => Some(t.min(b)),
            (t, b) => t.or(b),
        }
    }

    /// Stable checkpoints committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// In-flight content replacements so far.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Sequence number (epoch) of the newest committed stable checkpoint.
    pub fn latest_epoch(&self) -> Option<u64> {
        self.stable.latest_seq()
    }

    /// Torn writes recorded by the store — for a durable backend this
    /// includes tears detected when reloading after a real crash.
    pub fn torn_writes(&self) -> u64 {
        self.stable.stats().torn_writes
    }

    /// Whether a stable write is currently in flight.
    pub fn is_writing(&self) -> bool {
        self.stable.is_writing()
    }

    /// Whether any stable operation failed and awaits retry.
    pub fn stable_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Retry attempts performed against a failing backend so far.
    pub fn stable_retries(&self) -> u64 {
        self.stable_retries
    }

    /// Retries queued stable operations in order, stopping at the first
    /// operation that fails again. Returns the MDCD effects of any commit
    /// that succeeded on retry.
    pub fn retry_stable(&mut self) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        while !self.pending.is_empty() {
            self.stable_retries += 1;
            match &self.pending[0] {
                PendingStable::Begin(ckpt) => {
                    let ckpt = ckpt.clone();
                    if self.stable.begin_write(ckpt).is_err() {
                        break;
                    }
                    self.pending.remove(0);
                }
                PendingStable::Commit(ndc) => {
                    let ndc = *ndc;
                    if self.stable.commit_write().is_err() {
                        break;
                    }
                    self.commits += 1;
                    effects.push(TbEffect::Committed(ndc));
                    self.pending.remove(0);
                }
            }
        }
        effects
    }

    /// Runs the engine's timer expiry and executes the resulting store
    /// actions; shared by the wall-clock and commanded paths.
    fn fire_timer(
        &mut self,
        now_local: LocalTime,
        dirty: bool,
        payload: &dyn Fn() -> CheckpointPayload,
        volatile_copy: &dyn Fn() -> Option<CheckpointPayload>,
        effects: &mut Vec<TbEffect>,
    ) {
        let wall_now = Instant::now();
        let actions = self
            .engine
            .handle(TbEvent::TimerExpired { now_local, dirty });
        for a in actions {
            match a {
                TbAction::BeginStableWrite { contents, .. } => {
                    let p = match contents {
                        ContentsChoice::CurrentState => payload(),
                        ContentsChoice::VolatileCopy => volatile_copy().unwrap_or_else(payload),
                    };
                    let seq = self.engine.ndc().0 + 1;
                    if let Ok(ckpt) = p.into_checkpoint(seq, "stable") {
                        // A transient backend failure (injected fsync fault,
                        // flaky disk) must not be swallowed: queue the write
                        // for retry so disk catches up with the engine.
                        if self.stable.begin_write(ckpt.clone()).is_err() {
                            self.pending.push(PendingStable::Begin(ckpt));
                        }
                    }
                }
                TbAction::StartBlocking { duration } => {
                    if !self.commanded {
                        self.blocking_until =
                            Some(wall_now + Duration::from_nanos(duration.as_nanos()));
                    }
                    effects.push(TbEffect::BlockingStarted);
                }
                TbAction::ScheduleTimer { at } => {
                    if !self.commanded {
                        self.next_timer = Some(self.to_instant(at));
                    }
                }
                // Thread clocks share a time base (and the commanded mode's
                // grid is synthetic); resynchronization is a no-op here.
                TbAction::RequestResync => {}
                TbAction::ReplaceWithCurrentState | TbAction::CommitStableWrite { .. } => {}
            }
        }
    }

    /// Ends the blocking period and commits the in-flight write; shared by
    /// the wall-clock and commanded paths.
    fn finish_blocking(&mut self, effects: &mut Vec<TbEffect>) {
        self.blocking_until = None;
        let actions = self.engine.handle(TbEvent::BlockingElapsed);
        for a in actions {
            match a {
                TbAction::CommitStableWrite { ndc } => {
                    // The Committed effect is what tells MDCD the epoch is
                    // durable; emitting it for a failed commit would let the
                    // engine's epoch run ahead of the disk. Defer it to a
                    // successful retry instead.
                    if !self.pending.is_empty() {
                        self.pending.push(PendingStable::Commit(ndc));
                    } else if self.stable.commit_write().is_ok() {
                        self.commits += 1;
                        effects.push(TbEffect::Committed(ndc));
                    } else {
                        self.pending.push(PendingStable::Commit(ndc));
                    }
                }
                TbAction::ScheduleTimer { at } if !self.commanded => {
                    self.next_timer = Some(self.to_instant(at));
                }
                _ => {}
            }
        }
    }

    /// Drives due wall-clock deadlines (no-op in commanded mode). `dirty` is
    /// the MDCD checkpoint-relevant bit; `payload` builds the current-state
    /// checkpoint payload on demand; `volatile_copy` fetches the most recent
    /// volatile checkpoint payload.
    pub fn tick(
        &mut self,
        dirty: bool,
        payload: &dyn Fn() -> CheckpointPayload,
        volatile_copy: &dyn Fn() -> Option<CheckpointPayload>,
    ) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        if self.commanded {
            return effects;
        }
        let now = Instant::now();
        if let Some(b) = self.blocking_until {
            if now >= b {
                self.finish_blocking(&mut effects);
            }
        }
        if let Some(t) = self.next_timer {
            if now >= t && self.blocking_until.is_none() {
                self.next_timer = None;
                let now_local = self.local_now();
                self.fire_timer(now_local, dirty, payload, volatile_copy, &mut effects);
            }
        }
        effects
    }

    /// Commanded mode: starts one checkpoint round *now*, as if the node's
    /// timer expired exactly on its deadline grid. Returns the MDCD effects;
    /// whether a write actually began is visible via
    /// [`is_writing`](Self::is_writing). Ignored while a round is already
    /// blocking.
    pub fn begin_checkpoint(
        &mut self,
        dirty: bool,
        payload: &dyn Fn() -> CheckpointPayload,
        volatile_copy: &dyn Fn() -> Option<CheckpointPayload>,
    ) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        if self.engine.is_blocking() {
            return effects;
        }
        // Every node is fed its exact grid point, so the whole cluster
        // agrees on epoch numbering without measuring clocks.
        let now_local = self.engine.next_deadline();
        self.fire_timer(now_local, dirty, payload, volatile_copy, &mut effects);
        effects
    }

    /// Commanded mode: ends the current round's blocking period and commits
    /// the in-flight stable write. Ignored when no round is blocking.
    pub fn commit_checkpoint(&mut self) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        if !self.engine.is_blocking() {
            return effects;
        }
        self.finish_blocking(&mut effects);
        effects
    }

    /// Global rollback: aborts any in-flight write, selects the newest
    /// committed checkpoint with sequence number `<= epoch` (the epoch
    /// line), and restarts the engine from it. Returns the selected
    /// checkpoint, or `None` when nothing at or before `epoch` is retained —
    /// in which case the engine still restarts, from sequence number 0.
    pub fn rollback_to(&mut self, epoch: u64) -> Option<Checkpoint> {
        self.stable.abort_write();
        // Global recovery supersedes whatever write was pending retry.
        self.pending.clear();
        self.blocking_until = None;
        let ck = self.stable.latest_at_or_before_shared(epoch);
        let ndc = CkptSeqNo(ck.as_ref().map_or(0, Checkpoint::seq));
        let now_local = if self.commanded {
            self.engine.next_deadline()
        } else {
            self.local_now()
        };
        let actions = self.engine.handle(TbEvent::Restarted { now_local, ndc });
        self.absorb_schedule(actions);
        ck
    }

    /// The MDCD dirty bit was cleared (a `passed_AT` matched) — possibly
    /// inside the blocking period.
    pub fn dirty_cleared(&mut self, payload: &dyn Fn() -> CheckpointPayload) {
        let actions = self.engine.handle(TbEvent::DirtyCleared);
        for a in actions {
            if let TbAction::ReplaceWithCurrentState = a {
                let seq = self.engine.ndc().0 + 1;
                if let Ok(ckpt) = payload().into_checkpoint(seq, "stable-replaced") {
                    // If the round's begin itself is awaiting retry there is
                    // no in-flight write to replace; swap the queued
                    // contents instead so the retry writes the fresh state.
                    if let Some(PendingStable::Begin(queued)) = self.pending.first_mut() {
                        *queued = ckpt;
                        self.replacements += 1;
                    } else if self.stable.replace_in_progress(ckpt).is_ok() {
                        self.replacements += 1;
                    }
                }
            }
        }
    }

    /// The latest committed stable checkpoint, if any (used by recovery
    /// tooling and tests).
    #[allow(dead_code)]
    pub fn latest(&self) -> Option<CheckpointPayload> {
        self.stable
            .latest_shared()
            .and_then(|c| CheckpointPayload::from_checkpoint(&c).ok())
    }

    /// Byzantine-lite injection (unmasked-regime axis 4): flips value bytes
    /// inside the latest *committed* checkpoint and re-encodes the record in
    /// place, so its CRC — and every integrity check between here and the
    /// next recovery — remains valid. Returns the corrupted epoch, or `None`
    /// when nothing is committed, the payload does not decode, or the
    /// backend cannot rewrite committed history (delta chains).
    pub fn corrupt_latest_checkpoint(&mut self) -> Option<u64> {
        let ckpt = self.stable.latest_shared()?;
        let corrupted = synergy::regime::corrupt_checkpoint_value(&ckpt)?;
        self.stable.replace_latest(corrupted).then(|| ckpt.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_clocks::SyncParams;
    use synergy_des::{SimDuration, SimTime};
    use synergy_mdcd::EngineSnapshot;
    use synergy_tb::TbVariant;

    fn config(interval_ms: u64) -> TbConfig {
        TbConfig::new(
            TbVariant::Adapted,
            SimDuration::from_millis(interval_ms),
            SyncParams::new(SimDuration::from_micros(100), 0.0),
            SimDuration::from_micros(50),
            SimDuration::from_micros(500),
        )
    }

    fn payload() -> CheckpointPayload {
        CheckpointPayload::new(
            vec![1, 2, 3],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn commits_checkpoints_on_wall_clock() {
        let mut rt = TbRuntime::new(config(20));
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut effects = Vec::new();
        while rt.commits() < 2 && Instant::now() < deadline {
            effects.extend(rt.tick(false, &payload, &|| None));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rt.commits() >= 2, "expected periodic commits");
        assert!(effects.iter().any(|e| matches!(e, TbEffect::Committed(_))));
        assert!(rt.latest().is_some());
    }

    #[test]
    fn dirty_timer_copies_volatile_checkpoint() {
        let mut rt = TbRuntime::new(config(10));
        let vol = CheckpointPayload::new(
            vec![9, 9],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::from_nanos(42),
        );
        let vol_clone = vol.clone();
        let deadline = Instant::now() + Duration::from_millis(500);
        while rt.commits() < 1 && Instant::now() < deadline {
            rt.tick(true, &payload, &|| Some(vol_clone.clone()));
            std::thread::sleep(Duration::from_millis(1));
        }
        let latest = rt.latest().expect("committed");
        assert_eq!(
            latest.app, vol.app,
            "dirty process persists the volatile copy"
        );
        assert_eq!(latest.state_time(), SimTime::from_nanos(42));
    }

    #[test]
    fn dirty_cleared_replaces_in_flight_contents() {
        let mut rt = TbRuntime::new(config(10));
        let vol = CheckpointPayload::new(
            vec![9, 9],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::from_nanos(42),
        );
        // Wait for the timer to fire (dirty) and begin the write...
        let deadline = Instant::now() + Duration::from_millis(500);
        while rt.next_deadline().is_some() && rt.commits() == 0 && Instant::now() < deadline {
            rt.tick(true, &payload, &|| Some(vol.clone()));
            // ...and replace mid-blocking the moment a write is in flight.
            if rt.stable.is_writing() {
                rt.dirty_cleared(&payload);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(rt.replacements(), 1, "in-flight write must be replaced");
        // Let the blocking period finish and commit.
        let deadline = Instant::now() + Duration::from_millis(500);
        while rt.commits() == 0 && Instant::now() < deadline {
            rt.tick(false, &payload, &|| None);
            std::thread::sleep(Duration::from_millis(1));
        }
        let latest = rt.latest().expect("committed");
        assert_eq!(latest.app, payload().app, "current state won");
    }

    #[test]
    fn commanded_rounds_commit_in_lockstep() {
        let mut rt = TbRuntime::commanded(config(1000), StableStore::new());
        assert!(rt.next_deadline().is_none(), "nothing fires on its own");
        assert!(rt.tick(false, &payload, &|| None).is_empty());
        for round in 1..=3u64 {
            let began = rt.begin_checkpoint(false, &payload, &|| None);
            assert!(began.iter().any(|e| matches!(e, TbEffect::BlockingStarted)));
            assert!(rt.is_writing());
            // Re-beginning mid-round is ignored, not an engine panic.
            assert!(rt.begin_checkpoint(false, &payload, &|| None).is_empty());
            let committed = rt.commit_checkpoint();
            assert!(committed
                .iter()
                .any(|e| matches!(e, TbEffect::Committed(ndc) if ndc.0 == round)));
            assert_eq!(rt.latest_epoch(), Some(round));
        }
        assert_eq!(rt.commits(), 3);
        // Committing with no round open is ignored.
        assert!(rt.commit_checkpoint().is_empty());
    }

    #[test]
    fn injected_stable_faults_are_retried_not_swallowed() {
        use synergy_storage::{DiskFault, DiskFaultPlan, DiskOp, FaultyStable};
        let plan = DiskFaultPlan {
            faults: vec![
                DiskFault {
                    seq: 1,
                    op: DiskOp::Begin,
                    times: 1,
                },
                DiskFault {
                    seq: 2,
                    op: DiskOp::Commit,
                    times: 1,
                },
            ],
        };
        let mut rt =
            TbRuntime::commanded(config(1000), FaultyStable::new(StableStore::new(), plan));
        // Round 1: the begin fails; a retry lands it before the commit.
        rt.begin_checkpoint(false, &payload, &|| None);
        assert!(!rt.is_writing(), "failed begin left nothing in flight");
        assert!(rt.stable_pending());
        assert!(rt.retry_stable().is_empty(), "begin retry emits no effects");
        assert!(rt.is_writing());
        let committed = rt.commit_checkpoint();
        assert!(committed
            .iter()
            .any(|e| matches!(e, TbEffect::Committed(ndc) if ndc.0 == 1)));
        // Round 2: the commit fails; the Committed effect must be deferred
        // to the successful retry, never emitted for a write that is not
        // durable.
        rt.begin_checkpoint(false, &payload, &|| None);
        let committed = rt.commit_checkpoint();
        assert!(committed.is_empty(), "no Committed effect while disk lags");
        assert!(rt.stable_pending());
        let retried = rt.retry_stable();
        assert!(retried
            .iter()
            .any(|e| matches!(e, TbEffect::Committed(ndc) if ndc.0 == 2)));
        assert!(!rt.stable_pending());
        assert_eq!(rt.latest_epoch(), Some(2));
        assert_eq!(rt.commits(), 2);
        assert!(rt.stable_retries() >= 2);
    }

    #[test]
    fn rollback_discards_pending_stable_operations() {
        use synergy_storage::{DiskFault, DiskFaultPlan, DiskOp, FaultyStable};
        let plan = DiskFaultPlan {
            faults: vec![DiskFault {
                seq: 2,
                op: DiskOp::Begin,
                times: 99,
            }],
        };
        let mut rt =
            TbRuntime::commanded(config(1000), FaultyStable::new(StableStore::new(), plan));
        rt.begin_checkpoint(false, &payload, &|| None);
        rt.commit_checkpoint();
        // Epoch 2's begin fails persistently; global recovery supersedes it.
        rt.begin_checkpoint(false, &payload, &|| None);
        assert!(rt.stable_pending());
        let ck = rt.rollback_to(1).expect("epoch 1 retained");
        assert_eq!(ck.seq(), 1);
        assert!(!rt.stable_pending(), "rollback clears the retry queue");
    }

    #[test]
    fn commanded_runtime_runs_unchanged_over_the_delta_chain_store() {
        use synergy_archive::{ChainRecord, ChainWalker, DeltaStable, StableHistory};
        let store = DeltaStable::open(StableStore::new(), 4);
        let mut rt = TbRuntime::commanded(config(1000), store);
        for round in 1..=6u64 {
            let dirty = round % 2 == 0;
            rt.begin_checkpoint(dirty, &payload, &|| Some(payload()));
            // Replace mid-round on even (dirty) epochs: the delta layer must
            // re-diff against the same base, exactly like a plain store
            // swaps bytes.
            if dirty {
                rt.dirty_cleared(&payload);
            }
            let committed = rt.commit_checkpoint();
            assert!(committed
                .iter()
                .any(|e| matches!(e, TbEffect::Committed(ndc) if ndc.0 == round)));
        }
        assert_eq!(rt.commits(), 6);
        assert_eq!(rt.replacements(), 3);
        let stats = rt.stable.delta_stats();
        assert_eq!(stats.full_records, 2, "k=4 over 6 commits");
        assert_eq!(stats.delta_records, 4);
        let latest = rt.latest().expect("committed");
        assert_eq!(latest.app, payload().app, "payload survives the chain");
        // Global rollback walks the chain transparently and the next round
        // continues from the restored epoch.
        let ck = rt.rollback_to(3).expect("epoch 3 retained");
        assert_eq!(ck.seq(), 3);
        assert_eq!(
            CheckpointPayload::from_checkpoint(&ck)
                .expect("decodes")
                .app,
            payload().app
        );
        rt.begin_checkpoint(false, &payload, &|| None);
        let committed = rt.commit_checkpoint();
        assert!(committed
            .iter()
            .any(|e| matches!(e, TbEffect::Committed(ndc) if ndc.0 == 4)));
        assert_eq!(rt.latest_epoch(), Some(4));
        // The chain the inner store actually holds replays byte-identically
        // to the live view, post-rollback seq reuse included.
        let mut walker = ChainWalker::new();
        let mut replayed = None;
        for rec in rt.stable.inner().committed_records() {
            let chain: ChainRecord =
                synergy_codec::from_bytes(&rec.shared_data()).expect("chain record decodes");
            if let Some(image) = walker.feed(rec.seq(), &chain) {
                replayed = Some(image);
            }
        }
        assert_eq!(walker.orphans(), 0);
        assert_eq!(
            replayed.expect("chain replays"),
            rt.stable.latest_shared().expect("committed").shared_data(),
        );
    }

    #[test]
    fn commanded_rollback_selects_epoch_line_and_restarts() {
        let mut rt = TbRuntime::commanded(config(1000), StableStore::new());
        for _ in 0..3 {
            rt.begin_checkpoint(false, &payload, &|| None);
            rt.commit_checkpoint();
        }
        // A fourth round begins but the node "crashes" before commit.
        rt.begin_checkpoint(false, &payload, &|| None);
        assert!(rt.is_writing());
        let ck = rt.rollback_to(2).expect("epoch 2 retained");
        assert_eq!(ck.seq(), 2, "newest checkpoint at or before the line");
        assert!(!rt.is_writing(), "in-flight write aborted by rollback");
        // The next round continues the sequence from the restored epoch.
        rt.begin_checkpoint(false, &payload, &|| None);
        let committed = rt.commit_checkpoint();
        assert!(committed
            .iter()
            .any(|e| matches!(e, TbEffect::Committed(ndc) if ndc.0 == 3)));
        assert_eq!(rt.rollback_to(0), None, "epoch 0 retains nothing");
    }
}
