//! Real-time adapted-TB checkpointing for the threaded runtime.
//!
//! The paper's concluding remarks plan to "incorporate the
//! protocol-coordination scheme into the GSU Middleware"; this module does
//! that for the threaded runtime: each node owns a [`TbEngine`] driven by
//! wall-clock deadlines, persists coordinated checkpoints into a
//! [`StableStore`], and bridges the blocking periods into the MDCD engine
//! exactly like the simulator driver does.
//!
//! Wall-clock notes: thread clocks share one time base, so `δ` and `ρ` are
//! configuration inputs to the blocking-period formula rather than measured
//! properties; acknowledgment tracking is delegated to the transport layer
//! and the saved unacked set is the node's ack tracker contents at write
//! time.

use std::time::{Duration, Instant};

use synergy::payload::CheckpointPayload;
use synergy_clocks::LocalTime;
use synergy_storage::StableStore;
use synergy_tb::{Action as TbAction, ContentsChoice, Event as TbEvent, TbConfig, TbEngine};

/// Wall-clock TB state for one node.
pub(crate) struct TbRuntime {
    engine: TbEngine,
    stable: StableStore,
    epoch: Instant,
    next_timer: Option<Instant>,
    blocking_until: Option<Instant>,
    commits: u64,
    replacements: u64,
}

/// What the node loop must do after a TB tick.
pub(crate) enum TbEffect {
    /// A blocking period started: forward `BlockingStarted` to MDCD.
    BlockingStarted,
    /// A blocking period ended: forward `StableCheckpointCommitted(ndc)`
    /// and `BlockingEnded` to MDCD.
    Committed(synergy_net::CkptSeqNo),
}

impl TbRuntime {
    pub fn new(config: TbConfig) -> Self {
        let engine = TbEngine::new(config);
        let epoch = Instant::now();
        let mut rt = TbRuntime {
            engine,
            stable: StableStore::new(),
            epoch,
            next_timer: None,
            blocking_until: None,
            commits: 0,
            replacements: 0,
        };
        let actions = rt.engine.start();
        rt.absorb_schedule(actions);
        rt
    }

    fn local_now(&self) -> LocalTime {
        LocalTime::from_nanos(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn to_instant(&self, local: LocalTime) -> Instant {
        self.epoch + Duration::from_nanos(local.as_nanos())
    }

    fn absorb_schedule(&mut self, actions: Vec<TbAction>) {
        for a in actions {
            if let TbAction::ScheduleTimer { at } = a {
                self.next_timer = Some(self.to_instant(at));
            }
        }
    }

    /// The next instant the node loop must wake up for, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        match (self.next_timer, self.blocking_until) {
            (Some(t), Some(b)) => Some(t.min(b)),
            (t, b) => t.or(b),
        }
    }

    /// Stable checkpoints committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// In-flight content replacements so far.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Drives due deadlines. `dirty` is the MDCD checkpoint-relevant bit;
    /// `payload` builds the current-state checkpoint payload on demand;
    /// `volatile_copy` fetches the most recent volatile checkpoint payload.
    pub fn tick(
        &mut self,
        dirty: bool,
        payload: &dyn Fn() -> CheckpointPayload,
        volatile_copy: &dyn Fn() -> Option<CheckpointPayload>,
    ) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        let now = Instant::now();
        if let Some(b) = self.blocking_until {
            if now >= b {
                self.blocking_until = None;
                let actions = self.engine.handle(TbEvent::BlockingElapsed);
                for a in actions {
                    if let TbAction::CommitStableWrite { ndc } = a {
                        if self.stable.commit_write().is_ok() {
                            self.commits += 1;
                        }
                        effects.push(TbEffect::Committed(ndc));
                    }
                }
            }
        }
        if let Some(t) = self.next_timer {
            if now >= t && self.blocking_until.is_none() {
                self.next_timer = None;
                let now_local = self.local_now();
                let actions = self
                    .engine
                    .handle(TbEvent::TimerExpired { now_local, dirty });
                for a in actions {
                    match a {
                        TbAction::BeginStableWrite { contents, .. } => {
                            let p = match contents {
                                ContentsChoice::CurrentState => payload(),
                                ContentsChoice::VolatileCopy => {
                                    volatile_copy().unwrap_or_else(payload)
                                }
                            };
                            let seq = self.engine.ndc().0 + 1;
                            if let Ok(ckpt) = p.into_checkpoint(seq, "stable") {
                                let _ = self.stable.begin_write(ckpt);
                            }
                        }
                        TbAction::StartBlocking { duration } => {
                            self.blocking_until =
                                Some(now + Duration::from_nanos(duration.as_nanos()));
                            effects.push(TbEffect::BlockingStarted);
                        }
                        TbAction::ScheduleTimer { at } => {
                            self.next_timer = Some(self.to_instant(at));
                        }
                        // Thread clocks share a time base; resynchronization
                        // is a no-op here.
                        TbAction::RequestResync => {}
                        TbAction::ReplaceWithCurrentState | TbAction::CommitStableWrite { .. } => {}
                    }
                }
            }
        }
        effects
    }

    /// The MDCD dirty bit was cleared (a `passed_AT` matched) — possibly
    /// inside the blocking period.
    pub fn dirty_cleared(&mut self, payload: &dyn Fn() -> CheckpointPayload) {
        let actions = self.engine.handle(TbEvent::DirtyCleared);
        for a in actions {
            if let TbAction::ReplaceWithCurrentState = a {
                let seq = self.engine.ndc().0 + 1;
                if let Ok(ckpt) = payload().into_checkpoint(seq, "stable-replaced") {
                    if self.stable.replace_in_progress(ckpt).is_ok() {
                        self.replacements += 1;
                    }
                }
            }
        }
    }

    /// The latest committed stable checkpoint, if any (used by recovery
    /// tooling and tests).
    #[allow(dead_code)]
    pub fn latest(&self) -> Option<CheckpointPayload> {
        self.stable
            .latest()
            .and_then(|c| CheckpointPayload::from_checkpoint(c).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_clocks::SyncParams;
    use synergy_des::{SimDuration, SimTime};
    use synergy_mdcd::EngineSnapshot;
    use synergy_tb::TbVariant;

    fn config(interval_ms: u64) -> TbConfig {
        TbConfig::new(
            TbVariant::Adapted,
            SimDuration::from_millis(interval_ms),
            SyncParams::new(SimDuration::from_micros(100), 0.0),
            SimDuration::from_micros(50),
            SimDuration::from_micros(500),
        )
    }

    fn payload() -> CheckpointPayload {
        CheckpointPayload::new(
            vec![1, 2, 3],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn commits_checkpoints_on_wall_clock() {
        let mut rt = TbRuntime::new(config(20));
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut effects = Vec::new();
        while rt.commits() < 2 && Instant::now() < deadline {
            effects.extend(rt.tick(false, &payload, &|| None));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rt.commits() >= 2, "expected periodic commits");
        assert!(effects.iter().any(|e| matches!(e, TbEffect::Committed(_))));
        assert!(rt.latest().is_some());
    }

    #[test]
    fn dirty_timer_copies_volatile_checkpoint() {
        let mut rt = TbRuntime::new(config(10));
        let vol = CheckpointPayload::new(
            vec![9, 9],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::from_nanos(42),
        );
        let vol_clone = vol.clone();
        let deadline = Instant::now() + Duration::from_millis(500);
        while rt.commits() < 1 && Instant::now() < deadline {
            rt.tick(true, &payload, &|| Some(vol_clone.clone()));
            std::thread::sleep(Duration::from_millis(1));
        }
        let latest = rt.latest().expect("committed");
        assert_eq!(
            latest.app, vol.app,
            "dirty process persists the volatile copy"
        );
        assert_eq!(latest.state_time(), SimTime::from_nanos(42));
    }

    #[test]
    fn dirty_cleared_replaces_in_flight_contents() {
        let mut rt = TbRuntime::new(config(10));
        let vol = CheckpointPayload::new(
            vec![9, 9],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::from_nanos(42),
        );
        // Wait for the timer to fire (dirty) and begin the write...
        let deadline = Instant::now() + Duration::from_millis(500);
        while rt.next_deadline().is_some() && rt.commits() == 0 && Instant::now() < deadline {
            rt.tick(true, &payload, &|| Some(vol.clone()));
            // ...and replace mid-blocking the moment a write is in flight.
            if rt.stable.is_writing() {
                rt.dirty_cleared(&payload);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(rt.replacements(), 1, "in-flight write must be replaced");
        // Let the blocking period finish and commit.
        let deadline = Instant::now() + Duration::from_millis(500);
        while rt.commits() == 0 && Instant::now() < deadline {
            rt.tick(false, &payload, &|| None);
            std::thread::sleep(Duration::from_millis(1));
        }
        let latest = rt.latest().expect("committed");
        assert_eq!(latest.app, payload().app, "current state won");
    }
}
