//! The takeover supervisor.
//!
//! In the simulator the system driver orchestrates software recovery
//! synchronously; in the threaded runtime a small supervisor thread plays
//! that role: on an acceptance-test failure it halts the active process,
//! commands the shadow to take over, and retargets the peer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use synergy_net::ProcessId;

use crate::node::{NodeCmd, NodeInput};
use crate::{P1ACT, P1SDW, P2};

/// Events nodes report to the supervisor (or, in the cluster runtime, to
/// the node host's local event drain).
#[derive(Debug)]
pub enum SupEvent {
    /// An acceptance test failed at `detected_by`.
    SoftwareError {
        /// The detecting process (carried for diagnostics; the recovery
        /// procedure is the same regardless of who detected the error).
        #[allow(dead_code)]
        detected_by: ProcessId,
    },
    /// The shadow finished its takeover.
    TakeoverDone {
        /// The (now promoted) shadow.
        #[allow(dead_code)]
        by: ProcessId,
    },
}

pub(crate) struct Supervisor {
    recoveries: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    pub fn spawn(rx: Receiver<SupEvent>, cmd: HashMap<ProcessId, Sender<NodeInput>>) -> Self {
        let recoveries = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&recoveries);
        let handle = std::thread::Builder::new()
            .name("synergy-supervisor".into())
            .spawn(move || {
                let mut recovering = false;
                while let Ok(event) = rx.recv() {
                    match event {
                        SupEvent::SoftwareError { .. } if !recovering => {
                            recovering = true;
                            // error_recovery(P1sdw, P2): halt the active,
                            // promote the shadow, retarget the peer.
                            let _ = cmd[&P1ACT].send(NodeInput::Cmd(NodeCmd::Halt));
                            let _ = cmd[&P1SDW].send(NodeInput::Cmd(NodeCmd::TakeOver));
                            let _ = cmd[&P2].send(NodeInput::Cmd(NodeCmd::RetargetActive(P1SDW)));
                        }
                        SupEvent::SoftwareError { .. } => {}
                        SupEvent::TakeoverDone { .. } => {
                            counter.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
            .expect("spawn supervisor");
        Supervisor {
            recoveries,
            handle: Some(handle),
        }
    }

    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::SeqCst)
    }

    /// Polls until `n` recoveries have completed or `timeout` expires.
    pub fn wait_for(&self, n: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        loop {
            let seen = self.recoveries();
            if seen >= n || Instant::now() >= deadline {
                return seen;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the supervisor thread (its channel closes when all senders
    /// drop; this just reaps the join handle).
    pub fn stop(mut self) {
        if let Some(h) = self.handle.take() {
            // The event channel's senders live in node threads, which have
            // been shut down by now; recv() errors out and the thread ends.
            let _ = h.join();
        }
    }
}
