//! One process thread, hosting the same [`ProcessHost`] the simulator
//! drives: application + MDCD engine + stores + ack bookkeeping.
//!
//! The thread is a driver in the sense of
//! [`synergy::system::host`]: it feeds [`HostEvent`]s from its input
//! channel and interprets the returned [`HostAction`]s against the real
//! transport. The TB runtime stays outside the host (the host's own TB slot
//! is `None` here) and forwards its blocking/commit notifications through
//! [`ProcessHost::engine_event`].
//!
//! The runner is generic over its [`Transport`] and its TB runtime's
//! [`Stable`] backend so the same loop serves both drivers: the in-process
//! threaded middleware ([`ThreadedNet`](synergy_net::threaded::ThreadedNet) +
//! in-memory store, wall-clock TB) and the multi-process cluster runtime
//! ([`TcpTransport`](synergy_net::tcp::TcpTransport) + on-disk store,
//! commanded TB rounds).

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;

use synergy::app::{Application, CounterApp};
use synergy::payload::CheckpointPayload;
use synergy::system::recovery::volatile_copy_payload;
use synergy::system::{HostAction, HostEvent, ProcessHost, Topology};
use synergy::Scheme;
use synergy_des::SimTime;
use synergy_mdcd::{EngineSnapshot, Event, ProcessRole, RecoveryDecision};
use synergy_net::{Envelope, MissionId, ProcessId, Transport};
use synergy_storage::Stable;

use crate::supervisor::SupEvent;
use crate::tb_runtime::{TbEffect, TbRuntime};
use crate::{P1ACT, P1SDW};

/// Everything a node thread can receive on its (single) input channel:
/// transport deliveries forwarded by its network pump, and control commands.
#[derive(Debug)]
pub enum NodeInput {
    /// An envelope delivered by the transport.
    Net(Envelope),
    /// A control command.
    Cmd(NodeCmd),
}

/// Commands a node thread accepts.
#[derive(Debug)]
pub enum NodeCmd {
    /// Produce one application message.
    Produce {
        /// Whether the message is external (acceptance-tested).
        external: bool,
    },
    /// Arm/disarm the design fault (active process only; others ignore it).
    SetFaulty(bool),
    /// Shadow only: decide, restore if needed, promote, re-send.
    TakeOver,
    /// Peer only: the promoted shadow is the new active endpoint.
    RetargetActive(ProcessId),
    /// The process is dead (active after takeover).
    Halt,
    /// Commanded TB: begin one stable-checkpoint round now. Replies whether
    /// a stable write is in flight afterwards.
    BeginCkpt(Sender<bool>),
    /// Commanded TB: end the round's blocking period and commit. Replies
    /// with the newest committed epoch.
    CommitCkpt(Sender<Option<u64>>),
    /// Global rollback to the newest stable checkpoint at or before the
    /// epoch line, re-sending saved unacknowledged messages (paper §2.2).
    Rollback {
        /// The epoch line (minimum committed epoch across the cluster).
        epoch: u64,
        /// Where to report the outcome.
        reply: Sender<RollbackOutcome>,
    },
    /// Report live status. Because commands and deliveries share one FIFO
    /// channel, a `Status` round-trip doubles as a barrier: everything sent
    /// to the node before it has been processed once the reply arrives.
    Status(Sender<NodeStatus>),
    /// Unmasked-regime hook (Byzantine-lite): flip value bytes inside the
    /// latest committed stable checkpoint, re-encoding it behind a valid
    /// CRC. Replies with the corrupted epoch, or `None` when the store is
    /// empty or the backend cannot rewrite committed history.
    Corrupt(Sender<Option<u64>>),
    /// Stop the thread.
    Shutdown,
}

/// What a [`NodeCmd::Rollback`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollbackOutcome {
    /// Epoch of the checkpoint the node restored, or `None` when nothing at
    /// or before the line was retained (node left untouched).
    pub restored_epoch: Option<u64>,
    /// Saved unacknowledged messages re-sent during recovery.
    pub resent: usize,
}

/// A live snapshot of one node.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The process.
    pub pid: ProcessId,
    /// Its current role.
    pub role: ProcessRole,
    /// The MDCD dirty bit.
    pub dirty: bool,
    /// Whether a shadow has been promoted.
    pub promoted: bool,
    /// Suppressed messages currently logged (shadow only).
    pub logged: usize,
    /// Volatile checkpoints established.
    pub ckpts: u64,
    /// Acceptance tests executed.
    pub at_runs: u64,
    /// Application messages delivered to the application.
    pub delivered: u64,
    /// Whether the node has been halted.
    pub halted: bool,
    /// Stable checkpoints committed by the TB runtime (0 when disabled).
    pub stable_commits: u64,
    /// Epoch of the newest committed stable checkpoint, if any.
    pub stable_epoch: Option<u64>,
    /// Torn stable writes the store has recorded (including tears detected
    /// while reloading a durable store after a crash).
    pub torn_writes: u64,
    /// Retry attempts against a transiently failing stable backend.
    pub stable_retries: u64,
    /// Messages currently awaiting acknowledgment.
    pub unacked: usize,
}

/// Final per-node accounting.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The process.
    pub pid: ProcessId,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Volatile checkpoints established.
    pub ckpts: u64,
    /// Acceptance tests executed.
    pub at_runs: u64,
    /// Whether the node ended promoted (shadow) or halted (active).
    pub promoted: bool,
    /// Stable checkpoints committed by the TB runtime (0 when disabled).
    pub stable_commits: u64,
    /// Adapted-TB in-flight content replacements.
    pub stable_replacements: u64,
}

/// Forwards transport deliveries for `pid` into the node's input channel so
/// the run loop has a single blocking receive. The pump thread exits when
/// either side hangs up (transport torn down or node gone).
pub fn spawn_net_pump(pid: ProcessId, net_rx: Receiver<Envelope>, input_tx: Sender<NodeInput>) {
    std::thread::Builder::new()
        .name(format!("synergy-node-{pid}-net"))
        .spawn(move || {
            while let Ok(env) = net_rx.recv() {
                if input_tx.send(NodeInput::Net(env)).is_err() {
                    break;
                }
            }
        })
        .expect("spawn net pump thread");
}

/// The node event loop: one [`ProcessHost`] driven from an input channel
/// against a real transport.
pub struct NodeRunner<T: Transport, S: Stable> {
    /// The tenant this runner serves; deliveries carrying any other tag
    /// are discarded at the loop boundary (per-tenant isolation guard).
    mission: MissionId,
    host: ProcessHost,
    net: Arc<T>,
    input_rx: Receiver<NodeInput>,
    sup_tx: Sender<SupEvent>,
    started: std::time::Instant,
    halted: bool,
    dead_senders: Vec<ProcessId>,
    tb: Option<TbRuntime<S>>,
    seed: u64,
}

impl<T: Transport, S: Stable> NodeRunner<T, S> {
    /// Builds a runner for `pid`. The caller owns endpoint registration and
    /// the delivery pump (see [`spawn_net_pump`]) as well as the TB
    /// runtime's mode and backend; restoring a previously persisted
    /// checkpoint (process restart) happens afterwards via
    /// [`NodeCmd::Rollback`].
    pub fn new(
        pid: ProcessId,
        seed: u64,
        net: Arc<T>,
        input_rx: Receiver<NodeInput>,
        sup_tx: Sender<SupEvent>,
        tb: Option<TbRuntime<S>>,
    ) -> Self {
        let (role, node) = match pid {
            p if p == P1ACT => (ProcessRole::Active, 0),
            p if p == P1SDW => (ProcessRole::Shadow, 1),
            _ => (ProcessRole::Peer, 2),
        };
        // The TB layer runs outside the host in TbRuntime, so the host's
        // own TB slot stays empty; effects come back via engine_event.
        let mut host = ProcessHost::new(
            role,
            pid,
            node,
            Topology::canonical(),
            Scheme::Coordinated,
            CounterApp::new(seed ^ 0xA5A5),
            None,
        );
        // No trace consumer exists in the threaded runtime; skip building
        // Record actions at the source.
        host.set_tracing(false);
        NodeRunner {
            mission: MissionId::SOLO,
            host,
            net,
            input_rx,
            sup_tx,
            started: std::time::Instant::now(),
            halted: false,
            dead_senders: Vec::new(),
            tb,
            seed,
        }
    }

    /// Assigns the runner (and its host) to a mission: outgoing traffic is
    /// stamped with the tag and deliveries of other tenants are ignored.
    /// Call before [`run`](Self::run).
    #[must_use]
    pub fn with_mission(mut self, mission: MissionId) -> Self {
        self.mission = mission;
        self.host.set_mission(mission);
        self
    }

    /// Runs the loop until shutdown; returns the final accounting.
    pub fn run(mut self) -> NodeReport {
        loop {
            // Bound the wait by the next TB deadline so wall-clock timers
            // fire on time (commanded runtimes report no deadline).
            let timeout = self
                .tb
                .as_ref()
                .and_then(TbRuntime::next_deadline)
                .map(|d| d.saturating_duration_since(std::time::Instant::now()))
                .unwrap_or(std::time::Duration::from_millis(50));
            match self.input_rx.recv_timeout(timeout) {
                Ok(NodeInput::Net(env)) => self.on_envelope(env),
                Ok(NodeInput::Cmd(NodeCmd::Shutdown)) | Err(RecvTimeoutError::Disconnected) => {
                    break
                }
                Ok(NodeInput::Cmd(cmd)) => self.on_cmd(cmd),
                Err(RecvTimeoutError::Timeout) => {}
            }
            self.tick_tb();
        }
        NodeReport {
            pid: self.host.pid,
            delivered: self.host.delivered,
            ckpts: self.host.volatile_seq,
            at_runs: self.host.engine.at_runs(),
            promoted: self.host.engine.role() == ProcessRole::Active
                && self.host.pid == self.host.topology.shadow,
            stable_commits: self.tb.as_ref().map_or(0, TbRuntime::commits),
            stable_replacements: self.tb.as_ref().map_or(0, TbRuntime::replacements),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn current_payload(&mut self) -> CheckpointPayload {
        let now = self.now();
        self.host.current_payload(now)
    }

    fn volatile_payload(&self) -> Option<CheckpointPayload> {
        self.host
            .volatile
            .latest()
            .map(|c| volatile_copy_payload(c, &self.host.acks, &self.host.recv_log))
    }

    fn tick_tb(&mut self) {
        let Some(mut tb) = self.tb.take() else { return };
        let dirty = self.host.engine.checkpoint_bit();
        let current = self.current_payload();
        let vol = self.volatile_payload();
        let mut effects = tb.tick(dirty, &|| current.clone(), &|| vol.clone());
        if tb.stable_pending() {
            effects.extend(tb.retry_stable());
        }
        self.tb = Some(tb);
        self.apply_tb_effects(effects);
    }

    /// Retries failed stable operations a bounded number of times — the
    /// flaky-disk masking loop. A backend that keeps failing past the budget
    /// leaves the runtime pending; the orchestrator sees the lag via
    /// `stable_epoch` and aborts the campaign rather than hanging.
    fn retry_stable_bounded(tb: &mut TbRuntime<S>) -> Vec<TbEffect> {
        const STABLE_RETRY_BUDGET: u32 = 8;
        let mut effects = Vec::new();
        let mut attempts = 0;
        while tb.stable_pending() && attempts < STABLE_RETRY_BUDGET {
            effects.extend(tb.retry_stable());
            attempts += 1;
            if tb.stable_pending() {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        effects
    }

    fn apply_tb_effects(&mut self, effects: Vec<TbEffect>) {
        let now = self.now();
        for e in effects {
            match e {
                TbEffect::BlockingStarted => {
                    let actions = self.host.engine_event(Event::BlockingStarted, now);
                    self.apply(actions);
                }
                TbEffect::Committed(ndc) => {
                    let mut actions = self
                        .host
                        .engine_event(Event::StableCheckpointCommitted(ndc), now);
                    actions.extend(self.host.engine_event(Event::BlockingEnded, now));
                    self.apply(actions);
                }
            }
        }
    }

    fn on_envelope(&mut self, env: Envelope) {
        // A shared transport can only misroute across tenants if a
        // registration bug aliases two missions; the runner still never
        // lets foreign traffic reach its engines.
        if env.mission != self.mission {
            return;
        }
        if self.halted || self.dead_senders.contains(&env.from()) {
            return;
        }
        let bit_before = self.host.engine.checkpoint_bit();
        let actions = self.host.handle(HostEvent::Deliver(env), self.now());
        self.apply(actions);
        if bit_before && !self.host.engine.checkpoint_bit() {
            if let Some(mut tb) = self.tb.take() {
                let current = self.current_payload();
                tb.dirty_cleared(&|| current.clone());
                self.tb = Some(tb);
            }
        }
    }

    /// The local side of a takeover/retarget: decide, roll back to the
    /// volatile checkpoint if the decision says so, and stop listening to
    /// the failed active.
    fn rollback_if_decided(&mut self) {
        let decision = self
            .host
            .engine
            .recovery_decision()
            .unwrap_or(RecoveryDecision::RollForward);
        if decision == RecoveryDecision::RollBack {
            let _ = self.host.rollback_to_volatile(self.now());
        }
        self.dead_senders.push(self.host.topology.active);
    }

    /// Hardware-error recovery: restore the node from the stable checkpoint
    /// the epoch line selects and re-send its saved unacknowledged messages.
    fn rollback_to_line(&mut self, epoch: u64) -> RollbackOutcome {
        let Some(mut tb) = self.tb.take() else {
            return RollbackOutcome {
                restored_epoch: None,
                resent: 0,
            };
        };
        let restored = tb.rollback_to(epoch);
        self.tb = Some(tb);
        let payload = match restored.as_ref() {
            Some(ckpt) => match CheckpointPayload::from_checkpoint(ckpt) {
                Ok(p) => p,
                Err(_) => {
                    return RollbackOutcome {
                        restored_epoch: None,
                        resent: 0,
                    }
                }
            },
            // No committed checkpoint at or below the line: the epoch line
            // is 0 and the mission restarts from the initial state, exactly
            // as the simulator's hardware recovery does.
            None => CheckpointPayload::new(
                CounterApp::new(self.seed ^ 0xA5A5).snapshot(),
                EngineSnapshot::default(),
                Vec::new(),
                Vec::new(),
                SimTime::ZERO,
            ),
        };
        self.host.restore_from_payload(&payload);
        let mut resent = 0;
        for env in self.host.acks.unacked_shared() {
            self.net.send((*env).clone());
            resent += 1;
        }
        RollbackOutcome {
            restored_epoch: restored.map(|c| c.seq()),
            resent,
        }
    }

    fn on_cmd(&mut self, cmd: NodeCmd) {
        match cmd {
            NodeCmd::Produce { external } => {
                if self.halted {
                    return;
                }
                let actions = self
                    .host
                    .handle(HostEvent::Produce { external }, self.now());
                self.apply(actions);
            }
            NodeCmd::SetFaulty(on) => self.host.app.set_faulty(on),
            NodeCmd::TakeOver => {
                self.rollback_if_decided();
                let plan = self.host.engine.take_over();
                for mut env in plan.resend {
                    env.mission = self.mission;
                    self.host.note_send(&env);
                    self.net.send(env);
                }
                let _ = self
                    .sup_tx
                    .send(SupEvent::TakeoverDone { by: self.host.pid });
            }
            NodeCmd::RetargetActive(new_active) => {
                self.rollback_if_decided();
                if let Some(peer) = self.host.engine.as_peer_mut() {
                    peer.retarget_active(new_active);
                }
            }
            NodeCmd::Halt => self.halted = true,
            NodeCmd::BeginCkpt(tx) => {
                if let Some(mut tb) = self.tb.take() {
                    let dirty = self.host.engine.checkpoint_bit();
                    let current = self.current_payload();
                    let vol = self.volatile_payload();
                    let mut effects =
                        tb.begin_checkpoint(dirty, &|| current.clone(), &|| vol.clone());
                    if tb.stable_pending() {
                        effects.extend(Self::retry_stable_bounded(&mut tb));
                    }
                    let writing = tb.is_writing();
                    self.tb = Some(tb);
                    self.apply_tb_effects(effects);
                    let _ = tx.send(writing);
                } else {
                    let _ = tx.send(false);
                }
            }
            NodeCmd::CommitCkpt(tx) => {
                if let Some(mut tb) = self.tb.take() {
                    let mut effects = tb.commit_checkpoint();
                    if tb.stable_pending() {
                        effects.extend(Self::retry_stable_bounded(&mut tb));
                    }
                    let epoch = tb.latest_epoch();
                    self.tb = Some(tb);
                    self.apply_tb_effects(effects);
                    let _ = tx.send(epoch);
                } else {
                    let _ = tx.send(None);
                }
            }
            NodeCmd::Rollback { epoch, reply } => {
                let outcome = self.rollback_to_line(epoch);
                let _ = reply.send(outcome);
            }
            NodeCmd::Corrupt(tx) => {
                let epoch = self
                    .tb
                    .as_mut()
                    .and_then(TbRuntime::corrupt_latest_checkpoint);
                let _ = tx.send(epoch);
            }
            NodeCmd::Status(tx) => {
                let snap = self.host.engine.snapshot();
                let _ = tx.send(NodeStatus {
                    pid: self.host.pid,
                    role: self.host.engine.role(),
                    dirty: self.host.engine.dirty_bit(),
                    promoted: snap.promoted,
                    logged: snap.log.len(),
                    ckpts: self.host.volatile_seq,
                    at_runs: self.host.engine.at_runs(),
                    delivered: self.host.delivered,
                    halted: self.halted,
                    stable_commits: self.tb.as_ref().map_or(0, TbRuntime::commits),
                    stable_epoch: self.tb.as_ref().and_then(TbRuntime::latest_epoch),
                    torn_writes: self.tb.as_ref().map_or(0, TbRuntime::torn_writes),
                    stable_retries: self.tb.as_ref().map_or(0, TbRuntime::stable_retries),
                    unacked: self.host.acks.len(),
                });
            }
            NodeCmd::Shutdown => unreachable!("handled by the select loop"),
        }
    }

    fn apply(&mut self, actions: Vec<HostAction>) {
        for action in actions {
            match action {
                HostAction::Send(env) | HostAction::SendAck(env) => self.net.send(env),
                HostAction::SoftwareErrorDetected => {
                    self.halted = self.host.pid == self.host.topology.active;
                    let _ = self.sup_tx.send(SupEvent::SoftwareError {
                        detected_by: self.host.pid,
                    });
                }
                // Deliveries, checkpoints and acceptance tests are already
                // counted by the host; trace lines and TB scheduling have
                // no driver-side effect in the threaded runtime (the host
                // runs without an embedded TB engine here).
                HostAction::Delivered
                | HostAction::AtPerformed { .. }
                | HostAction::RegimeCorrupted { .. }
                | HostAction::VolatileSaved { .. }
                | HostAction::WriteThroughCommitted
                | HostAction::StableWriteBegun { .. }
                | HostAction::StableReplaced
                | HostAction::StableCommitted { .. }
                | HostAction::BlockingStarted { .. }
                | HostAction::ScheduleTimer { .. }
                | HostAction::ResyncRequested
                | HostAction::Record { .. } => {}
            }
        }
    }
}
