//! One process thread: application + MDCD engine + volatile storage.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use synergy::app::{Application, CounterApp};
use synergy::payload::CheckpointPayload;
use synergy_des::SimTime;
use synergy_mdcd::{
    Action, Event, MdcdConfig, OutboundMessage, ProcessRole, RecoveryDecision,
};
use synergy_net::threaded::ThreadedNet;
use synergy_net::{Endpoint, Envelope, MessageBody, ProcessId};
use synergy_storage::VolatileStore;

use crate::supervisor::SupEvent;
use crate::tb_runtime::{payload_now, TbEffect, TbRuntime};
use crate::{DEVICE, P1ACT, P1SDW, P2};

/// Commands a node thread accepts.
#[derive(Debug)]
pub(crate) enum NodeCmd {
    /// Produce one application message.
    Produce {
        /// Whether the message is external (acceptance-tested).
        external: bool,
    },
    /// Arm/disarm the design fault (active process only; others ignore it).
    SetFaulty(bool),
    /// Shadow only: decide, restore if needed, promote, re-send.
    TakeOver,
    /// Peer only: the promoted shadow is the new active endpoint.
    RetargetActive(ProcessId),
    /// The process is dead (active after takeover).
    Halt,
    /// Report live status.
    Status(Sender<NodeStatus>),
    /// Stop the thread.
    Shutdown,
}

/// A live snapshot of one node.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The process.
    pub pid: ProcessId,
    /// Its current role.
    pub role: ProcessRole,
    /// The MDCD dirty bit.
    pub dirty: bool,
    /// Whether a shadow has been promoted.
    pub promoted: bool,
    /// Suppressed messages currently logged (shadow only).
    pub logged: usize,
    /// Volatile checkpoints established.
    pub ckpts: u64,
    /// Acceptance tests executed.
    pub at_runs: u64,
    /// Application messages delivered to the application.
    pub delivered: u64,
    /// Whether the node has been halted.
    pub halted: bool,
    /// Stable checkpoints committed by the TB runtime (0 when disabled).
    pub stable_commits: u64,
}

/// Final per-node accounting.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The process.
    pub pid: ProcessId,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Volatile checkpoints established.
    pub ckpts: u64,
    /// Acceptance tests executed.
    pub at_runs: u64,
    /// Whether the node ended promoted (shadow) or halted (active).
    pub promoted: bool,
    /// Stable checkpoints committed by the TB runtime (0 when disabled).
    pub stable_commits: u64,
    /// Adapted-TB in-flight content replacements.
    pub stable_replacements: u64,
}

pub(crate) struct NodeRunner {
    pid: ProcessId,
    app: CounterApp,
    engine: synergy::roles::RoleEngine,
    volatile: VolatileStore,
    net: Arc<ThreadedNet>,
    net_rx: Receiver<Envelope>,
    cmd_rx: Receiver<NodeCmd>,
    sup_tx: Sender<SupEvent>,
    started: std::time::Instant,
    delivered: u64,
    ckpts: u64,
    halted: bool,
    dead_senders: Vec<ProcessId>,
    sent_log: Vec<synergy::payload::SentRecord>,
    tb: Option<TbRuntime>,
}

impl NodeRunner {
    pub fn new(
        pid: ProcessId,
        seed: u64,
        net: Arc<ThreadedNet>,
        cmd_rx: Receiver<NodeCmd>,
        sup_tx: Sender<SupEvent>,
        tb: Option<synergy_tb::TbConfig>,
    ) -> Self {
        let role = match pid {
            p if p == P1ACT => ProcessRole::Active,
            p if p == P1SDW => ProcessRole::Shadow,
            _ => ProcessRole::Peer,
        };
        let net_rx = net.register(Endpoint::Process(pid));
        NodeRunner {
            pid,
            app: CounterApp::new(seed ^ 0xA5A5),
            engine: synergy::roles::RoleEngine::new(
                role,
                MdcdConfig::modified(),
                P1ACT,
                P1SDW,
                P2,
            ),
            volatile: VolatileStore::new(),
            net,
            net_rx,
            cmd_rx,
            sup_tx,
            started: std::time::Instant::now(),
            delivered: 0,
            ckpts: 0,
            halted: false,
            dead_senders: Vec::new(),
            sent_log: Vec::new(),
            tb: tb.map(TbRuntime::new),
        }
    }

    pub fn run(mut self) -> NodeReport {
        loop {
            // Bound the wait by the next TB deadline so timers fire on time.
            let timeout = self
                .tb
                .as_ref()
                .and_then(TbRuntime::next_deadline)
                .map(|d| d.saturating_duration_since(std::time::Instant::now()))
                .unwrap_or(std::time::Duration::from_millis(50));
            let mut stop = false;
            crossbeam::channel::select! {
                recv(self.net_rx) -> env => {
                    if let Ok(env) = env {
                        self.on_envelope(env);
                    }
                }
                recv(self.cmd_rx) -> cmd => {
                    match cmd {
                        Ok(NodeCmd::Shutdown) | Err(_) => stop = true,
                        Ok(cmd) => self.on_cmd(cmd),
                    }
                }
                default(timeout) => {}
            }
            if stop {
                break;
            }
            self.tick_tb();
        }
        NodeReport {
            pid: self.pid,
            delivered: self.delivered,
            ckpts: self.ckpts,
            at_runs: self.engine.at_runs(),
            promoted: self.engine.role() == ProcessRole::Active && self.pid == P1SDW,
            stable_commits: self.tb.as_ref().map_or(0, TbRuntime::commits),
            stable_replacements: self.tb.as_ref().map_or(0, TbRuntime::replacements),
        }
    }

    fn current_payload(&self) -> CheckpointPayload {
        payload_now(
            self.app.snapshot(),
            self.engine.snapshot(),
            self.sent_log.clone(),
            self.started.elapsed(),
        )
    }

    fn tick_tb(&mut self) {
        let Some(mut tb) = self.tb.take() else { return };
        let dirty = self.engine.checkpoint_bit();
        let current = self.current_payload();
        let vol = self
            .volatile
            .latest()
            .and_then(|c| CheckpointPayload::from_checkpoint(c).ok());
        let effects = tb.tick(dirty, &|| current.clone(), &|| vol.clone());
        self.tb = Some(tb);
        for e in effects {
            match e {
                TbEffect::BlockingStarted => {
                    let actions = self.engine.handle(Event::BlockingStarted);
                    self.apply(actions);
                }
                TbEffect::Committed(ndc) => {
                    let mut actions = self
                        .engine
                        .handle(Event::StableCheckpointCommitted(ndc));
                    actions.extend(self.engine.handle(Event::BlockingEnded));
                    self.apply(actions);
                }
            }
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(
            u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        )
    }

    fn on_envelope(&mut self, env: Envelope) {
        if self.halted
            || env.body.is_ack()
            || self.dead_senders.contains(&env.from())
        {
            return;
        }
        let bit_before = self.engine.checkpoint_bit();
        let actions = self.engine.handle(Event::Deliver(env));
        self.apply(actions);
        let bit_after = self.engine.checkpoint_bit();
        if bit_before && !bit_after {
            if let Some(mut tb) = self.tb.take() {
                let current = self.current_payload();
                tb.dirty_cleared(&|| current.clone());
                self.tb = Some(tb);
            }
        }
    }

    fn on_cmd(&mut self, cmd: NodeCmd) {
        match cmd {
            NodeCmd::Produce { external } => {
                if self.halted {
                    return;
                }
                let payload = if external {
                    self.app.produce_external()
                } else {
                    self.app.produce_internal()
                };
                let at_pass = self.app.acceptance_test(&payload);
                let to = if external {
                    Endpoint::Device(DEVICE)
                } else {
                    Endpoint::Process(P2)
                };
                let actions = self.engine.handle(Event::AppSend(OutboundMessage {
                    to,
                    payload,
                    external,
                    at_pass,
                }));
                self.apply(actions);
            }
            NodeCmd::SetFaulty(on) => self.app.set_faulty(on),
            NodeCmd::TakeOver => {
                let decision = self
                    .engine
                    .recovery_decision()
                    .unwrap_or(RecoveryDecision::RollForward);
                if decision == RecoveryDecision::RollBack {
                    if let Some(ckpt) = self.volatile.latest_cloned() {
                        if let Ok(p) = CheckpointPayload::from_checkpoint(&ckpt) {
                            self.app.restore(&p.app);
                            self.engine.restore(&p.engine);
                            self.sent_log = p.sent.clone();
                        }
                    }
                }
                self.dead_senders.push(P1ACT);
                let plan = self.engine.take_over();
                for env in plan.resend {
                    self.net.send(env);
                }
                let _ = self.sup_tx.send(SupEvent::TakeoverDone { by: self.pid });
            }
            NodeCmd::RetargetActive(new_active) => {
                let decision = self
                    .engine
                    .recovery_decision()
                    .unwrap_or(RecoveryDecision::RollForward);
                if decision == RecoveryDecision::RollBack {
                    if let Some(ckpt) = self.volatile.latest_cloned() {
                        if let Ok(p) = CheckpointPayload::from_checkpoint(&ckpt) {
                            self.app.restore(&p.app);
                            self.engine.restore(&p.engine);
                            self.sent_log = p.sent.clone();
                        }
                    }
                }
                self.dead_senders.push(P1ACT);
                if let Some(peer) = self.engine.as_peer_mut() {
                    peer.retarget_active(new_active);
                }
            }
            NodeCmd::Halt => self.halted = true,
            NodeCmd::Status(tx) => {
                let snap = self.engine.snapshot();
                let _ = tx.send(NodeStatus {
                    pid: self.pid,
                    role: self.engine.role(),
                    dirty: self.engine.dirty_bit(),
                    promoted: snap.promoted,
                    logged: snap.log.len(),
                    ckpts: self.ckpts,
                    at_runs: self.engine.at_runs(),
                    delivered: self.delivered,
                    halted: self.halted,
                    stable_commits: self.tb.as_ref().map_or(0, TbRuntime::commits),
                });
            }
            NodeCmd::Shutdown => unreachable!("handled by the select loop"),
        }
    }

    fn apply(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send(env) => {
                    if let (MessageBody::Application { .. }, Endpoint::Process(p)) =
                        (&env.body, env.to)
                    {
                        self.sent_log.push(synergy::payload::SentRecord {
                            to: p,
                            seq: env.id.seq,
                        });
                    }
                    self.net.send(env);
                }
                Action::TakeCheckpoint { kind, engine } => {
                    self.ckpts += 1;
                    let payload = CheckpointPayload::new(
                        self.app.snapshot(),
                        engine,
                        Vec::new(),
                        self.sent_log.clone(),
                        self.now(),
                    );
                    if let Ok(ckpt) = payload.into_checkpoint(self.ckpts, kind.to_string()) {
                        self.volatile.save(ckpt);
                    }
                }
                Action::DeliverToApp(env) => {
                    if let MessageBody::Application { payload, .. } = &env.body {
                        self.app.on_message(env.from(), env.id.seq, payload);
                        self.delivered += 1;
                    }
                }
                Action::AtPerformed { .. } => {}
                Action::SoftwareErrorDetected => {
                    self.halted = self.pid == P1ACT;
                    let _ = self.sup_tx.send(SupEvent::SoftwareError {
                        detected_by: self.pid,
                    });
                }
            }
        }
    }
}
