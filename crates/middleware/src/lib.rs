//! A threaded, GSU-style middleware runtime for the MDCD protocol.
//!
//! The paper reports (§5) that the first version of the authors' *GSU
//! Middleware* implemented the prototype MDCD protocol, with the
//! TB-coordination scheme planned as a later addition. This crate mirrors
//! that deployment surface: the same sans-io engines that the `synergy`
//! simulator drives are hosted here on **real threads** connected by the
//! [`ThreadedNet`](synergy_net::threaded::ThreadedNet) transport — one
//! thread per process, a supervisor thread orchestrating shadow takeover,
//! and a device channel delivering the acceptance-tested external output.
//!
//! # Example
//!
//! ```rust
//! use std::time::Duration;
//! use synergy_middleware::{Middleware, MiddlewareConfig};
//!
//! let mw = Middleware::spawn(MiddlewareConfig::default());
//! mw.produce(1, false); // component 1 sends an internal message
//! mw.produce(1, true);  // ... and an acceptance-tested external message
//! let out = mw.device_rx().recv_timeout(Duration::from_secs(2)).unwrap();
//! assert!(out.body.is_external());
//! let report = mw.shutdown();
//! assert_eq!(report.software_recoveries, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod supervisor;
mod tb_runtime;

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use synergy_net::threaded::ThreadedNet;
use synergy_net::{DeviceId, Endpoint, Envelope, MissionId, ProcessId};

pub use node::{
    spawn_net_pump, NodeCmd, NodeInput, NodeReport, NodeRunner, NodeStatus, RollbackOutcome,
};
pub use supervisor::SupEvent;
pub use tb_runtime::{TbEffect, TbRuntime};

use supervisor::Supervisor;

/// `P1act`'s process id (same layout as the simulator).
pub const P1ACT: ProcessId = ProcessId(1);
/// `P1sdw`'s process id.
pub const P1SDW: ProcessId = ProcessId(2);
/// `P2`'s process id.
pub const P2: ProcessId = ProcessId(3);
/// The external device endpoint.
pub const DEVICE: DeviceId = DeviceId(0);

/// Configuration of a middleware deployment.
#[derive(Clone, Debug)]
pub struct MiddlewareConfig {
    /// The mission (tenant) this deployment serves. Standalone deployments
    /// keep [`MissionId::SOLO`]; fleets spawning several deployments over
    /// one shared transport ([`Middleware::spawn_on`]) assign distinct ids.
    pub mission: MissionId,
    /// Seed for deterministic transport delays and application salts.
    pub seed: u64,
    /// Real-time message delay range.
    pub delay: std::ops::Range<Duration>,
    /// Adapted-TB checkpoint interval; `None` disables the hardware
    /// fault-tolerance layer (MDCD-only operation, as in the authors' GSU
    /// Middleware v1).
    pub tb_interval: Option<Duration>,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            mission: MissionId::SOLO,
            seed: 0,
            delay: Duration::from_micros(100)..Duration::from_micros(500),
            tb_interval: None,
        }
    }
}

impl MiddlewareConfig {
    /// Enables coordinated (adapted-TB) stable checkpointing with the given
    /// wall-clock interval.
    pub fn with_tb_interval(mut self, interval: Duration) -> Self {
        self.tb_interval = Some(interval);
        self
    }

    /// Assigns the deployment to a mission (tenant).
    pub fn with_mission(mut self, mission: MissionId) -> Self {
        self.mission = mission;
        self
    }

    fn tb_config(&self) -> Option<synergy_tb::TbConfig> {
        self.tb_interval.map(|interval| {
            synergy_tb::TbConfig::new(
                synergy_tb::TbVariant::Adapted,
                synergy_des::SimDuration::from_nanos(
                    u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX),
                ),
                synergy_clocks::SyncParams::new(synergy_des::SimDuration::from_micros(500), 0.0),
                synergy_des::SimDuration::from_micros(50),
                self.delay
                    .end
                    .as_nanos()
                    .try_into()
                    .map(synergy_des::SimDuration::from_nanos)
                    .unwrap_or(synergy_des::SimDuration::from_millis(1)),
            )
        })
    }
}

/// Aggregate report returned by [`Middleware::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct MiddlewareReport {
    /// Completed shadow takeovers.
    pub software_recoveries: u64,
    /// Per-node reports, keyed by process id.
    pub nodes: Vec<NodeReport>,
}

/// A running three-process guarded deployment.
pub struct Middleware {
    net: Arc<ThreadedNet>,
    /// Whether [`shutdown`](Self::shutdown) owns the transport. Tenants
    /// spawned over a shared net ([`Middleware::spawn_on`]) leave it
    /// running for their co-tenants.
    owns_net: bool,
    cmd: HashMap<ProcessId, Sender<NodeInput>>,
    device_rx: Receiver<Envelope>,
    supervisor: Supervisor,
    joins: Vec<std::thread::JoinHandle<NodeReport>>,
}

impl Middleware {
    /// Spawns the transport, the three process threads and the supervisor.
    pub fn spawn(config: MiddlewareConfig) -> Self {
        let net = Arc::new(ThreadedNet::new(config.delay.clone(), config.seed));
        let mut mw = Middleware::spawn_on(net, config);
        mw.owns_net = true;
        mw
    }

    /// Spawns one tenant deployment over an existing shared transport.
    ///
    /// Every tenant reuses the canonical `P1act`/`P1sdw`/`P2`/`D0` layout;
    /// its endpoints are registered under `config.mission` and all its
    /// traffic carries that tag, so any number of deployments multiplex
    /// over the same [`ThreadedNet`] without seeing each other. Shutting a
    /// tenant down leaves the shared transport running.
    pub fn spawn_on(net: Arc<ThreadedNet>, config: MiddlewareConfig) -> Self {
        let mission = config.mission;
        let device_rx = net.register_mission(mission, Endpoint::Device(DEVICE));
        let (sup_tx, sup_rx) = channel::<SupEvent>();

        let mut cmd = HashMap::new();
        let mut joins = Vec::new();
        for pid in [P1ACT, P1SDW, P2] {
            let (tx, rx) = channel::<NodeInput>();
            let net_rx = net.register_mission(mission, Endpoint::Process(pid));
            spawn_net_pump(pid, net_rx, tx.clone());
            let runner = NodeRunner::new(
                pid,
                config.seed,
                Arc::clone(&net),
                rx,
                sup_tx.clone(),
                config.tb_config().map(TbRuntime::new),
            )
            .with_mission(mission);
            cmd.insert(pid, tx);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("synergy-node-{mission}-{pid}"))
                    .spawn(move || runner.run())
                    .expect("spawn node thread"),
            );
        }
        let supervisor = Supervisor::spawn(sup_rx, cmd.clone());
        Middleware {
            net,
            owns_net: false,
            cmd,
            device_rx,
            supervisor,
            joins,
        }
    }

    /// Asks a component (1 or 2) to produce one message.
    ///
    /// Component 1's request is delivered to both replicas so active and
    /// shadow stay aligned.
    ///
    /// # Panics
    ///
    /// Panics if `component` is not 1 or 2.
    pub fn produce(&self, component: u8, external: bool) {
        let targets: &[ProcessId] = match component {
            1 => &[P1ACT, P1SDW],
            2 => &[P2],
            other => panic!("component must be 1 or 2, got {other}"),
        };
        for pid in targets {
            let _ = self.cmd[pid].send(NodeInput::Cmd(NodeCmd::Produce { external }));
        }
    }

    /// Arms (or disarms) the active version's design fault; the next
    /// acceptance test after arming fails and triggers shadow takeover.
    pub fn inject_fault(&self, active: bool) {
        let _ = self.cmd[&P1ACT].send(NodeInput::Cmd(NodeCmd::SetFaulty(active)));
    }

    /// The channel on which device-bound (external) messages arrive.
    pub fn device_rx(&self) -> &Receiver<Envelope> {
        &self.device_rx
    }

    /// Queries one node's live status.
    ///
    /// Returns `None` if the node has shut down (e.g. halted active).
    pub fn status(&self, pid: ProcessId) -> Option<NodeStatus> {
        let (tx, rx) = channel();
        self.cmd
            .get(&pid)?
            .send(NodeInput::Cmd(NodeCmd::Status(tx)))
            .ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// Blocks until the supervisor has observed `n` completed software
    /// recoveries or the timeout expires; returns the count seen.
    pub fn wait_for_recoveries(&self, n: u64, timeout: Duration) -> u64 {
        self.supervisor.wait_for(n, timeout)
    }

    /// Stops everything and collects reports.
    pub fn shutdown(self) -> MiddlewareReport {
        for tx in self.cmd.values() {
            let _ = tx.send(NodeInput::Cmd(NodeCmd::Shutdown));
        }
        let mut report = MiddlewareReport {
            software_recoveries: self.supervisor.recoveries(),
            nodes: Vec::new(),
        };
        for j in self.joins {
            if let Ok(node_report) = j.join() {
                report.nodes.push(node_report);
            }
        }
        self.supervisor.stop();
        if self.owns_net {
            self.net.shutdown();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> MiddlewareConfig {
        MiddlewareConfig {
            seed: 1,
            delay: Duration::from_micros(50)..Duration::from_micros(200),
            ..MiddlewareConfig::default()
        }
    }

    fn drain_until_external(mw: &Middleware, timeout: Duration) -> bool {
        mw.device_rx().recv_timeout(timeout).is_ok()
    }

    #[test]
    fn fault_free_guarded_operation_serves_devices() {
        let mw = Middleware::spawn(fast());
        for _ in 0..5 {
            mw.produce(1, false);
            mw.produce(2, false);
        }
        mw.produce(1, true);
        assert!(drain_until_external(&mw, Duration::from_secs(2)));
        let status = mw.status(P1ACT).expect("active is alive");
        assert!(status.at_runs >= 1);
        let report = mw.shutdown();
        assert_eq!(report.software_recoveries, 0);
        assert_eq!(report.nodes.len(), 3);
    }

    #[test]
    fn shadow_suppresses_messages_until_takeover() {
        let mw = Middleware::spawn(fast());
        mw.produce(1, false);
        std::thread::sleep(Duration::from_millis(50));
        let sdw = mw.status(P1SDW).expect("shadow alive");
        assert!(sdw.logged > 0, "shadow must log suppressed messages");
        assert!(!sdw.promoted);
        mw.shutdown();
    }

    #[test]
    fn fault_injection_triggers_takeover_and_service_continues() {
        let mw = Middleware::spawn(fast());
        mw.produce(1, false);
        mw.produce(2, false);
        mw.inject_fault(true);
        mw.produce(1, true); // the active's AT fails here
        let seen = mw.wait_for_recoveries(1, Duration::from_secs(5));
        assert_eq!(seen, 1, "takeover must complete");
        // The promoted shadow keeps serving external traffic.
        std::thread::sleep(Duration::from_millis(100));
        mw.produce(1, true);
        assert!(
            drain_until_external(&mw, Duration::from_secs(2)),
            "external service must continue after takeover"
        );
        let sdw = mw.status(P1SDW).expect("shadow alive");
        assert!(sdw.promoted);
        let report = mw.shutdown();
        assert_eq!(report.software_recoveries, 1);
    }

    #[test]
    fn tb_checkpointing_commits_on_real_threads() {
        let mw = Middleware::spawn(fast().with_tb_interval(Duration::from_millis(25)));
        for _ in 0..3 {
            mw.produce(1, false);
            mw.produce(2, false);
        }
        // Let several checkpoint intervals elapse.
        std::thread::sleep(Duration::from_millis(200));
        for pid in [P1ACT, P1SDW, P2] {
            let s = mw.status(pid).expect("alive");
            assert!(
                s.stable_commits >= 2,
                "{pid}: expected periodic stable commits, got {}",
                s.stable_commits
            );
        }
        let report = mw.shutdown();
        assert!(report.nodes.iter().all(|n| n.stable_commits >= 2));
    }

    #[test]
    fn tb_and_takeover_compose_on_threads() {
        let mw = Middleware::spawn(fast().with_tb_interval(Duration::from_millis(25)));
        mw.produce(1, false);
        mw.inject_fault(true);
        mw.produce(1, true);
        assert_eq!(mw.wait_for_recoveries(1, Duration::from_secs(5)), 1);
        std::thread::sleep(Duration::from_millis(100));
        // The promoted shadow keeps checkpointing and serving.
        mw.produce(1, true);
        assert!(drain_until_external(&mw, Duration::from_secs(2)));
        let sdw = mw.status(P1SDW).expect("alive");
        assert!(sdw.promoted);
        assert!(sdw.stable_commits >= 1);
        mw.shutdown();
    }

    #[test]
    fn two_tenants_multiplex_one_transport_without_crosstalk() {
        let net = Arc::new(ThreadedNet::new(
            Duration::from_micros(50)..Duration::from_micros(200),
            5,
        ));
        let a = Middleware::spawn_on(
            Arc::clone(&net),
            MiddlewareConfig { seed: 10, ..fast() }.with_mission(MissionId(1)),
        );
        let b = Middleware::spawn_on(
            Arc::clone(&net),
            MiddlewareConfig { seed: 20, ..fast() }.with_mission(MissionId(2)),
        );
        // Both tenants serve externals over the same net; each device
        // stream carries only its own tenant's tag.
        a.produce(1, true);
        b.produce(1, true);
        let got_a = a.device_rx().recv_timeout(Duration::from_secs(2)).unwrap();
        let got_b = b.device_rx().recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got_a.mission, MissionId(1));
        assert_eq!(got_b.mission, MissionId(2));
        // A design fault in tenant A recovers without touching tenant B.
        a.inject_fault(true);
        a.produce(1, true);
        assert_eq!(a.wait_for_recoveries(1, Duration::from_secs(5)), 1);
        b.produce(1, true);
        assert!(
            b.device_rx().recv_timeout(Duration::from_secs(2)).is_ok(),
            "tenant B keeps serving through tenant A's takeover"
        );
        let rb = b.shutdown();
        assert_eq!(rb.software_recoveries, 0, "no takeover leaked into B");
        let ra = a.shutdown();
        assert_eq!(ra.software_recoveries, 1);
        net.shutdown();
    }

    #[test]
    fn peer_state_tracks_dirty_messages() {
        let mw = Middleware::spawn(fast());
        mw.produce(1, false); // dirty internal message to P2
        std::thread::sleep(Duration::from_millis(100));
        let p2 = mw.status(P2).expect("peer alive");
        assert!(p2.dirty, "P2 contaminated by the active's message");
        assert!(p2.ckpts >= 1, "Type-1 checkpoint taken");
        mw.shutdown();
    }
}
