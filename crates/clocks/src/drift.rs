//! One node's drifting hardware clock.

use synergy_des::{SimDuration, SimTime};

use crate::local::LocalTime;

/// A piecewise-linear mapping between the global (true) time axis and one
/// node's local clock.
///
/// Between resynchronizations the clock runs at a fixed rate `1 + drift`
/// relative to true time. [`resync`](DriftingClock::resync) re-anchors the
/// local reading (modelling a clock-synchronization round) without making
/// local time jump backwards.
///
/// # Example
///
/// ```rust
/// use synergy_clocks::DriftingClock;
/// use synergy_des::{SimDuration, SimTime};
///
/// // A clock 50us ahead, running 100ppm fast.
/// let clock = DriftingClock::new(SimDuration::from_micros(50), 100e-6);
/// let local = clock.read(SimTime::from_secs_f64(1.0));
/// assert_eq!(local.as_nanos(), 1_000_150_000); // 1s + 50us offset + 100us drift
/// ```
#[derive(Clone, Debug)]
pub struct DriftingClock {
    /// True instant of the anchor point.
    anchor_true: SimTime,
    /// Local reading at the anchor point.
    anchor_local: LocalTime,
    /// Rate error: local seconds advance by `1 + drift` per true second.
    drift: f64,
}

impl DriftingClock {
    /// Creates a clock that at true time zero reads `offset` and runs at rate
    /// `1 + drift`.
    ///
    /// # Panics
    ///
    /// Panics if `drift` is not finite or `drift <= -1` (a clock that stands
    /// still or runs backwards).
    pub fn new(offset: SimDuration, drift: f64) -> Self {
        assert!(drift.is_finite() && drift > -1.0, "invalid drift: {drift}");
        DriftingClock {
            anchor_true: SimTime::ZERO,
            anchor_local: LocalTime::ZERO + offset,
            drift,
        }
    }

    /// A perfect clock: zero offset, zero drift.
    pub fn perfect() -> Self {
        DriftingClock::new(SimDuration::ZERO, 0.0)
    }

    /// This clock's rate error.
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The local reading at true instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last resynchronization anchor.
    pub fn read(&self, now: SimTime) -> LocalTime {
        let elapsed = now.duration_since(self.anchor_true);
        self.anchor_local + elapsed.mul_f64(1.0 + self.drift)
    }

    /// The true instant at which the local reading reaches `target`.
    ///
    /// Returns the anchor instant when `target` is already in the local past
    /// (the timer would fire immediately).
    pub fn when_local(&self, target: LocalTime) -> SimTime {
        if target <= self.anchor_local {
            return self.anchor_true;
        }
        let local_ahead = target - self.anchor_local;
        self.anchor_true + local_ahead.mul_f64(1.0 / (1.0 + self.drift))
    }

    /// Re-anchors the clock at true instant `now` so that it reads
    /// `new_reading` and subsequently runs at rate `1 + new_drift`.
    ///
    /// To keep local time monotonic (real clock-sync daemons slew rather than
    /// step backwards), the applied reading is
    /// `max(new_reading, current reading)`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous anchor or `new_drift` is
    /// invalid.
    pub fn resync(&mut self, now: SimTime, new_reading: LocalTime, new_drift: f64) {
        assert!(
            new_drift.is_finite() && new_drift > -1.0,
            "invalid drift: {new_drift}"
        );
        let current = self.read(now);
        self.anchor_true = now;
        self.anchor_local = new_reading.max(current);
        self.drift = new_drift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_true_time() {
        let c = DriftingClock::perfect();
        let t = SimTime::from_secs_f64(3.5);
        assert_eq!(c.read(t).as_nanos(), t.as_nanos());
        assert_eq!(c.when_local(LocalTime::from_nanos(t.as_nanos())), t);
    }

    #[test]
    fn fast_clock_reads_ahead() {
        let c = DriftingClock::new(SimDuration::ZERO, 1e-3);
        let local = c.read(SimTime::from_secs_f64(10.0));
        assert_eq!(local.as_nanos(), 10_010_000_000);
    }

    #[test]
    fn slow_clock_reads_behind() {
        let c = DriftingClock::new(SimDuration::ZERO, -1e-3);
        let local = c.read(SimTime::from_secs_f64(10.0));
        assert_eq!(local.as_nanos(), 9_990_000_000);
    }

    #[test]
    fn when_local_inverts_read() {
        let c = DriftingClock::new(SimDuration::from_micros(123), 5e-4);
        let t = SimTime::from_secs_f64(7.25);
        let local = c.read(t);
        let back = c.when_local(local);
        let err = back.as_nanos().abs_diff(t.as_nanos());
        assert!(err <= 1, "round-trip error {err}ns");
    }

    #[test]
    fn when_local_in_past_fires_at_anchor() {
        let c = DriftingClock::new(SimDuration::from_millis(5), 0.0);
        assert_eq!(c.when_local(LocalTime::from_nanos(1)), SimTime::ZERO);
    }

    #[test]
    fn resync_reanchors_without_backward_step() {
        let mut c = DriftingClock::new(SimDuration::from_millis(2), 0.0);
        let now = SimTime::from_secs_f64(1.0);
        let before = c.read(now);
        // Attempt to step the clock backwards by 1ms: reading must not regress.
        c.resync(now, before - SimDuration::from_millis(1), 0.0);
        assert_eq!(c.read(now), before);
        // Stepping forward applies exactly.
        let ahead = before + SimDuration::from_millis(3);
        c.resync(now, ahead, 1e-5);
        assert_eq!(c.read(now), ahead);
        assert_eq!(c.drift(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "invalid drift")]
    fn rejects_backward_running_clock() {
        DriftingClock::new(SimDuration::ZERO, -1.0);
    }
}
