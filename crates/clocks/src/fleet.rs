//! A fleet of clocks with bounded pairwise deviation.

use synergy_des::{DetRng, SimDuration, SimTime};

use crate::drift::DriftingClock;
use crate::local::LocalTime;

/// The synchronization quality parameters the TB protocol is given.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyncParams {
    /// `δ` — maximum deviation between any two clocks immediately after a
    /// resynchronization.
    pub delta: SimDuration,
    /// `ρ` — maximum clock drift rate (e.g. `1e-4` = 100 ppm).
    pub rho: f64,
}

impl SyncParams {
    /// Creates parameters, validating `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is negative or not finite.
    pub fn new(delta: SimDuration, rho: f64) -> Self {
        assert!(rho.is_finite() && rho >= 0.0, "invalid rho: {rho}");
        SyncParams { delta, rho }
    }

    /// The `δ + 2ρτ` deviation bound `elapsed` after a resynchronization.
    pub fn deviation_bound(&self, elapsed: SimDuration) -> SimDuration {
        crate::deviation_bound(self.delta, self.rho, elapsed)
    }
}

/// A set of drifting clocks, one per node, respecting [`SyncParams`].
///
/// Offsets are drawn uniformly in `[0, δ]` and drift rates uniformly in
/// `[-ρ, +ρ]`, so any two clocks deviate by at most `δ` right after a
/// (re)synchronization and by at most `δ + 2ρτ` thereafter.
///
/// # Example
///
/// ```rust
/// use synergy_clocks::{ClockFleet, SyncParams};
/// use synergy_des::{DetRng, SimDuration, SimTime};
///
/// let params = SyncParams::new(SimDuration::from_micros(200), 1e-4);
/// let fleet = ClockFleet::generate(3, params, &DetRng::new(1));
/// let t = SimTime::from_secs_f64(1.0);
/// let spread = fleet.max_pairwise_deviation(t);
/// assert!(spread <= params.deviation_bound(t - SimTime::ZERO));
/// ```
#[derive(Clone, Debug)]
pub struct ClockFleet {
    clocks: Vec<DriftingClock>,
    params: SyncParams,
    last_resync: SimTime,
    rng: DetRng,
    resync_count: u64,
}

impl ClockFleet {
    /// Generates `n` clocks from the deterministic stream `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn generate(n: usize, params: SyncParams, rng: &DetRng) -> Self {
        assert!(n > 0, "fleet must contain at least one clock");
        let mut rng = rng.stream("clock-fleet");
        let clocks = (0..n)
            .map(|_| {
                let offset = SimDuration::from_nanos(rng.gen_range(0..=params.delta.as_nanos()));
                let drift = rng.gen_range(-params.rho..=params.rho);
                DriftingClock::new(offset, drift)
            })
            .collect();
        ClockFleet {
            clocks,
            params,
            last_resync: SimTime::ZERO,
            rng,
            resync_count: 0,
        }
    }

    /// A fleet of perfect clocks (for tests that want exact synchrony).
    pub fn perfect(n: usize) -> Self {
        assert!(n > 0, "fleet must contain at least one clock");
        ClockFleet {
            clocks: (0..n).map(|_| DriftingClock::perfect()).collect(),
            params: SyncParams::new(SimDuration::ZERO, 0.0),
            last_resync: SimTime::ZERO,
            rng: DetRng::new(0),
            resync_count: 0,
        }
    }

    /// Number of clocks in the fleet.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the fleet is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The synchronization parameters.
    pub fn params(&self) -> SyncParams {
        self.params
    }

    /// The clock of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn clock(&self, i: usize) -> &DriftingClock {
        &self.clocks[i]
    }

    /// Reads node `i`'s clock at true instant `now`.
    pub fn read(&self, i: usize, now: SimTime) -> LocalTime {
        self.clocks[i].read(now)
    }

    /// The true instant at which node `i`'s clock reaches `target`.
    pub fn when_local(&self, i: usize, target: LocalTime) -> SimTime {
        self.clocks[i].when_local(target)
    }

    /// True instant of the most recent resynchronization.
    pub fn last_resync(&self) -> SimTime {
        self.last_resync
    }

    /// How many resynchronizations have been performed.
    pub fn resync_count(&self) -> u64 {
        self.resync_count
    }

    /// The `δ + 2ρτ` bound at true instant `now`.
    pub fn deviation_bound_at(&self, now: SimTime) -> SimDuration {
        self.params
            .deviation_bound(now.saturating_duration_since(self.last_resync))
    }

    /// Largest deviation between any two clocks at true instant `now`.
    pub fn max_pairwise_deviation(&self, now: SimTime) -> SimDuration {
        let readings: Vec<LocalTime> = self.clocks.iter().map(|c| c.read(now)).collect();
        let min = readings.iter().min().copied().unwrap_or(LocalTime::ZERO);
        let max = readings.iter().max().copied().unwrap_or(LocalTime::ZERO);
        max - min
    }

    /// Resynchronizes every clock at true instant `now`: fresh offsets within
    /// `δ` of a common reference and fresh drift rates within `±ρ`.
    ///
    /// The reference is the fastest current reading so no clock needs to step
    /// backwards.
    pub fn resync_all(&mut self, now: SimTime) {
        let reference = self
            .clocks
            .iter()
            .map(|c| c.read(now))
            .max()
            .expect("fleet is non-empty");
        for clock in &mut self.clocks {
            let offset =
                SimDuration::from_nanos(self.rng.gen_range(0..=self.params.delta.as_nanos()));
            let drift = if self.params.rho == 0.0 {
                0.0
            } else {
                self.rng.gen_range(-self.params.rho..=self.params.rho)
            };
            clock.resync(now, reference + offset, drift);
        }
        self.last_resync = now;
        self.resync_count += 1;
    }

    /// Models a *failed* resynchronization of node `i`: its clock is stepped
    /// to `excess` beyond the slowest clock's reading plus `δ`, so the fleet's
    /// pairwise deviation is at least `δ + excess` — strictly outside the
    /// envelope [`resync_all`](Self::resync_all) guarantees and the envelope
    /// the TB blocking-period formula assumes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn inject_skew(&mut self, i: usize, excess: SimDuration, now: SimTime) {
        let slowest = self
            .clocks
            .iter()
            .map(|c| c.read(now))
            .min()
            .expect("fleet is non-empty");
        let target = slowest + self.params.delta + excess;
        let drift = self.clocks[i].drift();
        let current = self.clocks[i].read(now);
        // Stepping forward only (DriftingClock::resync clamps monotonic).
        self.clocks[i].resync(now, target.max(current), drift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SyncParams {
        SyncParams::new(SimDuration::from_micros(500), 1e-4)
    }

    #[test]
    fn generation_respects_delta_at_origin() {
        for seed in 0..20 {
            let fleet = ClockFleet::generate(5, params(), &DetRng::new(seed));
            assert!(fleet.max_pairwise_deviation(SimTime::ZERO) <= params().delta);
        }
    }

    #[test]
    fn deviation_respects_bound_over_time() {
        let fleet = ClockFleet::generate(4, params(), &DetRng::new(3));
        for secs in [0.0, 1.0, 10.0, 100.0] {
            let t = SimTime::from_secs_f64(secs);
            let bound = fleet.deviation_bound_at(t);
            assert!(
                fleet.max_pairwise_deviation(t) <= bound,
                "deviation exceeded bound at {secs}s"
            );
        }
    }

    #[test]
    fn resync_restores_delta_bound() {
        let mut fleet = ClockFleet::generate(4, params(), &DetRng::new(9));
        let late = SimTime::from_secs_f64(1000.0);
        fleet.resync_all(late);
        assert_eq!(fleet.last_resync(), late);
        assert_eq!(fleet.resync_count(), 1);
        assert!(fleet.max_pairwise_deviation(late) <= params().delta);
        // Bound is measured from the new resync instant.
        let soon = late + SimDuration::from_secs(1);
        assert!(fleet.max_pairwise_deviation(soon) <= fleet.deviation_bound_at(soon));
    }

    #[test]
    fn clocks_never_step_backwards_on_resync() {
        let mut fleet = ClockFleet::generate(3, params(), &DetRng::new(4));
        let t = SimTime::from_secs_f64(50.0);
        let before: Vec<LocalTime> = (0..3).map(|i| fleet.read(i, t)).collect();
        fleet.resync_all(t);
        for (i, b) in before.iter().enumerate() {
            assert!(fleet.read(i, t) >= *b, "clock {i} stepped backwards");
        }
    }

    #[test]
    fn perfect_fleet_has_zero_deviation() {
        let fleet = ClockFleet::perfect(3);
        assert_eq!(
            fleet.max_pairwise_deviation(SimTime::from_secs_f64(42.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn deterministic_across_same_seed() {
        let a = ClockFleet::generate(3, params(), &DetRng::new(11));
        let b = ClockFleet::generate(3, params(), &DetRng::new(11));
        let t = SimTime::from_secs_f64(5.0);
        for i in 0..3 {
            assert_eq!(a.read(i, t), b.read(i, t));
        }
    }

    #[test]
    #[should_panic(expected = "at least one clock")]
    fn empty_fleet_rejected() {
        let _ = ClockFleet::perfect(0);
    }

    #[test]
    fn injected_skew_violates_delta_until_next_resync() {
        let mut fleet = ClockFleet::generate(3, params(), &DetRng::new(5));
        let t = SimTime::from_secs_f64(10.0);
        fleet.resync_all(t);
        assert!(fleet.max_pairwise_deviation(t) <= params().delta);
        let excess = SimDuration::from_micros(300);
        fleet.inject_skew(1, excess, t);
        let dev = fleet.max_pairwise_deviation(t);
        assert!(
            dev >= params().delta + excess,
            "deviation {dev:?} not beyond delta+excess"
        );
        // A (successful) resync restores the bound.
        let later = t + SimDuration::from_secs(1);
        fleet.resync_all(later);
        assert!(fleet.max_pairwise_deviation(later) <= params().delta);
    }
}
