//! Drifting hardware-clock models and resynchronization for `synergy-ft`.
//!
//! The time-based checkpointing protocol (Neves & Fuchs) assumes each node
//! owns a hardware clock whose deviation from every other clock is bounded by
//! `δ` immediately after a resynchronization and grows by at most `2ρτ` over
//! the `τ` time units since, where `ρ` is the maximum drift rate. This crate
//! provides:
//!
//! * [`LocalTime`] — a node-local clock reading, deliberately a different
//!   type from the simulator's global [`SimTime`](synergy_des::SimTime) so
//!   protocol code cannot mix the two axes by accident;
//! * [`DriftingClock`] — a piecewise-linear mapping between true time and a
//!   node's local time;
//! * [`ClockFleet`] — a set of clocks whose pairwise deviation respects `δ`
//!   and whose drift respects `ρ`, plus fleet-wide resynchronization;
//! * [`deviation_bound`] — the `δ + 2ρτ` bound both TB variants build their
//!   blocking periods from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod fleet;
mod local;

pub use drift::DriftingClock;
pub use fleet::{ClockFleet, SyncParams};
pub use local::LocalTime;

use synergy_des::SimDuration;

/// The worst-case deviation between any two clocks `elapsed` time units after
/// a resynchronization: `δ + 2ρτ`.
///
/// # Example
///
/// ```rust
/// use synergy_clocks::deviation_bound;
/// use synergy_des::SimDuration;
///
/// let delta = SimDuration::from_micros(100);
/// let bound = deviation_bound(delta, 1e-4, SimDuration::from_secs(10));
/// // 100us + 2 * 1e-4 * 10s = 100us + 2ms
/// assert_eq!(bound, SimDuration::from_micros(2100));
/// ```
pub fn deviation_bound(delta: SimDuration, rho: f64, elapsed: SimDuration) -> SimDuration {
    delta + elapsed.mul_f64(2.0 * rho)
}
