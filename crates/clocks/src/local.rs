//! Node-local clock readings.

use core::fmt;
use core::ops::{Add, Sub};

use synergy_des::SimDuration;

/// A reading of one node's hardware clock, in nanoseconds since that clock's
/// origin.
///
/// `LocalTime` and [`SimTime`](synergy_des::SimTime) are distinct types on
/// purpose: a timer deadline expressed in local time means nothing on the
/// global axis until translated through the owning
/// [`DriftingClock`](crate::DriftingClock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalTime(u64);

impl LocalTime {
    /// The clock origin.
    pub const ZERO: LocalTime = LocalTime(0);

    /// Constructs a reading from nanoseconds since the clock origin.
    pub const fn from_nanos(ns: u64) -> Self {
        LocalTime(ns)
    }

    /// Nanoseconds since the clock origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the clock origin, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, clamping at zero when `earlier` is
    /// later.
    pub fn saturating_duration_since(self, earlier: LocalTime) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for LocalTime {
    type Output = LocalTime;
    fn add(self, rhs: SimDuration) -> LocalTime {
        LocalTime(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("LocalTime overflow"),
        )
    }
}

impl Sub<SimDuration> for LocalTime {
    type Output = LocalTime;
    fn sub(self, rhs: SimDuration) -> LocalTime {
        LocalTime(
            self.0
                .checked_sub(rhs.as_nanos())
                .expect("LocalTime underflow"),
        )
    }
}

impl Sub<LocalTime> for LocalTime {
    type Output = SimDuration;
    fn sub(self, rhs: LocalTime) -> SimDuration {
        SimDuration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("LocalTime subtraction underflow"),
        )
    }
}

impl fmt::Display for LocalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s(local)", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = LocalTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!(
            t - LocalTime::from_nanos(4_000_000),
            SimDuration::from_millis(6)
        );
        assert_eq!(t - SimDuration::from_millis(10), LocalTime::ZERO);
    }

    #[test]
    fn saturating_duration() {
        let a = LocalTime::from_nanos(5);
        let b = LocalTime::from_nanos(9);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(4));
    }

    #[test]
    fn display() {
        assert_eq!(
            LocalTime::from_nanos(1_500_000_000).to_string(),
            "1.500000s(local)"
        );
    }
}
