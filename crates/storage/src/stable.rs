//! Stable (disk) checkpoint storage with abortable two-phase writes.

use core::fmt;

use crate::checkpoint::Checkpoint;

/// Errors from stable-store write sequencing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StableWriteError {
    /// `begin_write` was called while another write was in progress.
    WriteAlreadyInProgress,
    /// `replace_in_progress` or `commit_write` was called with no write in
    /// progress.
    NoWriteInProgress,
    /// A durable backend failed at the operating-system level (disk full,
    /// permission, device error). In-memory stores never return this.
    Io(String),
}

impl fmt::Display for StableWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StableWriteError::WriteAlreadyInProgress => {
                write!(f, "a stable write is already in progress")
            }
            StableWriteError::NoWriteInProgress => write!(f, "no stable write in progress"),
            StableWriteError::Io(e) => write!(f, "stable storage i/o error: {e}"),
        }
    }
}

impl std::error::Error for StableWriteError {}

/// The stable-storage contract shared by the in-memory [`StableStore`] (the
/// simulator's model) and the durable
/// [`DiskStableStore`](crate::DiskStableStore) (the cluster runtime's
/// backend).
///
/// Both preserve the adapted TB protocol's write semantics: a two-phase
/// `begin` → (`replace`)* → `commit` sequence whose in-flight contents are
/// lost — *torn* — if the node crashes before the commit, while previously
/// committed checkpoints survive. Recovery addresses committed history by
/// epoch ([`latest_at_or_before_shared`](Stable::latest_at_or_before_shared))
/// because the global rollback line is the minimum epoch committed by every
/// live process.
pub trait Stable {
    /// Begins a two-phase write of `checkpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::WriteAlreadyInProgress`] if a previous
    /// write was neither committed nor aborted, or
    /// [`StableWriteError::Io`] if a durable backend fails.
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError>;

    /// Aborts the in-flight contents and restarts the write with
    /// `checkpoint` (the `write_disk` third-argument semantics of the
    /// adapted TB algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::NoWriteInProgress`] if nothing is being
    /// written, or [`StableWriteError::Io`] if a durable backend fails.
    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError>;

    /// Atomically publishes the in-flight write.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::NoWriteInProgress`] if nothing is being
    /// written, or [`StableWriteError::Io`] if a durable backend fails.
    fn commit_write(&mut self) -> Result<(), StableWriteError>;

    /// Abandons an in-flight write without committing it; returns whether a
    /// write was abandoned. Not counted as a torn write.
    fn abort_write(&mut self) -> bool;

    /// Simulates a node crash: committed checkpoints survive, any in-flight
    /// write is torn.
    fn crash(&mut self);

    /// Whether a write is currently in progress.
    fn is_writing(&self) -> bool;

    /// A shared handle to the most recent committed checkpoint.
    fn latest_shared(&self) -> Option<Checkpoint>;

    /// Sequence number (epoch) of the most recent committed checkpoint.
    fn latest_seq(&self) -> Option<u64> {
        self.latest_shared().map(|c| c.seq())
    }

    /// The newest committed checkpoint with sequence number `<= seq` — the
    /// record global recovery selects when rolling back to the epoch line.
    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint>;

    /// Swaps the most recent *committed* checkpoint for `checkpoint` in
    /// place, returning whether a record was replaced.
    ///
    /// This is a fault-injection surface, not a protocol operation: the
    /// Byzantine-lite regime uses it to plant a value-corrupted record whose
    /// CRC is valid (the record was re-encoded after the flip), so every
    /// integrity check passes and the corruption surfaces only when a
    /// recovery restores the checkpoint. Backends that cannot rewrite
    /// committed history (e.g. delta chains) keep the default and return
    /// `false`; callers treat that as "injection unsupported here".
    fn replace_latest(&mut self, _checkpoint: Checkpoint) -> bool {
        false
    }

    /// Write statistics.
    fn stats(&self) -> StableStats;
}

impl Stable for StableStore {
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        StableStore::begin_write(self, checkpoint)
    }

    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        StableStore::replace_in_progress(self, checkpoint)
    }

    fn commit_write(&mut self) -> Result<(), StableWriteError> {
        StableStore::commit_write(self).map(|_| ())
    }

    fn abort_write(&mut self) -> bool {
        StableStore::abort_write(self)
    }

    fn crash(&mut self) {
        StableStore::crash(self);
    }

    fn is_writing(&self) -> bool {
        StableStore::is_writing(self)
    }

    fn latest_shared(&self) -> Option<Checkpoint> {
        StableStore::latest_shared(self)
    }

    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint> {
        self.latest_at_or_before(seq).cloned()
    }

    fn replace_latest(&mut self, checkpoint: Checkpoint) -> bool {
        StableStore::replace_latest(self, checkpoint)
    }

    fn stats(&self) -> StableStats {
        StableStore::stats(self)
    }
}

/// Statistics kept by a [`StableStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StableStats {
    /// Completed (committed) writes.
    pub commits: u64,
    /// Mid-flight content replacements (adapted TB's abort-and-replace).
    pub replacements: u64,
    /// Writes lost to a crash before committing.
    pub torn_writes: u64,
    /// Committed records rejected by CRC verification on reload (bit-rot);
    /// recovery fell back past each to the previous committed checkpoint.
    /// Always zero for in-memory stores.
    pub corrupt_records: u64,
}

/// One process's stable checkpoint store.
///
/// Stable storage survives node crashes; only *committed* contents do. The
/// adapted TB protocol starts a write when the checkpointing timer expires,
/// may **replace** the in-flight contents if a `passed_AT` notification
/// clears the dirty bit during the blocking period (paper Fig. 5/6), and
/// commits at the end of the blocking period.
///
/// The store retains a short history of committed checkpoints (not just the
/// newest): a crash can tear one process's in-flight write while its peers
/// commit theirs, in which case global recovery must roll everyone back to
/// the last checkpoint sequence number committed *by all* processes — which
/// for the torn process is not its newest record.
///
/// # Example
///
/// ```rust
/// use synergy_des::SimTime;
/// use synergy_storage::{Checkpoint, StableStore};
///
/// let mut disk = StableStore::new();
/// disk.begin_write(Checkpoint::encode(1, SimTime::ZERO, "copy-of-ram", &1u8)?)?;
/// // ... a passed_AT arrives inside the blocking period:
/// disk.replace_in_progress(Checkpoint::encode(1, SimTime::ZERO, "current-state", &2u8)?)?;
/// disk.commit_write()?;
/// assert_eq!(disk.latest().unwrap().decode::<u8>()?, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct StableStore {
    committed: Vec<Checkpoint>,
    in_progress: Option<Checkpoint>,
    stats: StableStats,
    retain: usize,
}

impl Default for StableStore {
    fn default() -> Self {
        StableStore::new()
    }
}

impl StableStore {
    /// Creates an empty store retaining the last 8 committed checkpoints.
    pub fn new() -> Self {
        StableStore::with_retention(8)
    }

    /// Creates an empty store retaining the last `retain` committed
    /// checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn with_retention(retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one checkpoint");
        StableStore {
            committed: Vec::new(),
            in_progress: None,
            stats: StableStats::default(),
            retain,
        }
    }

    /// Begins a two-phase write of `checkpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::WriteAlreadyInProgress`] if a previous
    /// write has not been committed or lost to a crash.
    pub fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        if self.in_progress.is_some() {
            return Err(StableWriteError::WriteAlreadyInProgress);
        }
        self.in_progress = Some(checkpoint);
        Ok(())
    }

    /// Aborts the in-flight contents and restarts the write with
    /// `checkpoint` (the `write_disk` third-argument semantics of the
    /// adapted TB algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::NoWriteInProgress`] if nothing is being
    /// written.
    pub fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        if self.in_progress.is_none() {
            return Err(StableWriteError::NoWriteInProgress);
        }
        self.in_progress = Some(checkpoint);
        self.stats.replacements += 1;
        Ok(())
    }

    /// Atomically publishes the in-flight write.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::NoWriteInProgress`] if nothing is being
    /// written.
    pub fn commit_write(&mut self) -> Result<&Checkpoint, StableWriteError> {
        let ckpt = self
            .in_progress
            .take()
            .ok_or(StableWriteError::NoWriteInProgress)?;
        self.committed.push(ckpt);
        if self.committed.len() > self.retain {
            let excess = self.committed.len() - self.retain;
            self.committed.drain(..excess);
        }
        self.stats.commits += 1;
        Ok(self.committed.last().expect("just committed"))
    }

    /// Whether a write is currently in progress.
    pub fn is_writing(&self) -> bool {
        self.in_progress.is_some()
    }

    /// The in-flight (not yet durable) checkpoint, if any.
    pub fn in_progress(&self) -> Option<&Checkpoint> {
        self.in_progress.as_ref()
    }

    /// The most recent *committed* checkpoint.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.committed.last()
    }

    /// A shared handle to the most recent committed checkpoint — a refcount
    /// bump of the underlying bytes, not a deep copy.
    pub fn latest_shared(&self) -> Option<Checkpoint> {
        self.committed.last().cloned()
    }

    /// Shared handles to every retained committed checkpoint, oldest first
    /// (commit order). Layered stores (the archive's delta chain) walk this
    /// to rebuild their state from the backend's history.
    pub fn committed_shared(&self) -> Vec<Checkpoint> {
        self.committed.clone()
    }

    /// The committed checkpoint with sequence number `seq`, if retained.
    pub fn by_seq(&self, seq: u64) -> Option<&Checkpoint> {
        self.committed.iter().rev().find(|c| c.seq() == seq)
    }

    /// The newest committed checkpoint with sequence number `<= seq` — the
    /// record global recovery selects when rolling back to the last epoch
    /// committed by every process.
    pub fn latest_at_or_before(&self, seq: u64) -> Option<&Checkpoint> {
        self.committed.iter().rev().find(|c| c.seq() <= seq)
    }

    /// Write statistics.
    pub fn stats(&self) -> StableStats {
        self.stats
    }

    /// Simulates a node crash: committed checkpoints survive, any in-flight
    /// write is torn and discarded.
    pub fn crash(&mut self) {
        if self.in_progress.take().is_some() {
            self.stats.torn_writes += 1;
        }
    }

    /// Abandons an in-flight write without committing it (global recovery
    /// supersedes whatever checkpoint establishment was in progress).
    /// Returns whether a write was abandoned. Unlike [`crash`](Self::crash)
    /// this does not count as a torn write.
    pub fn abort_write(&mut self) -> bool {
        self.in_progress.take().is_some()
    }

    /// Swaps the most recent committed checkpoint for `checkpoint` in place
    /// (Byzantine-lite fault injection; see [`Stable::replace_latest`]).
    /// Returns `false` when nothing is committed yet.
    pub fn replace_latest(&mut self, checkpoint: Checkpoint) -> bool {
        match self.committed.last_mut() {
            Some(slot) => {
                *slot = checkpoint;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_des::SimTime;

    fn ckpt(seq: u64) -> Checkpoint {
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "t", &seq).unwrap()
    }

    #[test]
    fn two_phase_write_commits() {
        let mut s = StableStore::new();
        s.begin_write(ckpt(1)).unwrap();
        assert!(s.is_writing());
        assert!(s.latest().is_none(), "not durable until committed");
        s.commit_write().unwrap();
        assert!(!s.is_writing());
        assert_eq!(s.latest().unwrap().seq(), 1);
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn replace_latest_swaps_committed_record_in_place() {
        let mut s = StableStore::new();
        assert!(!s.replace_latest(ckpt(9)), "nothing committed yet");
        s.begin_write(ckpt(1)).unwrap();
        s.commit_write().unwrap();
        s.begin_write(ckpt(2)).unwrap();
        s.commit_write().unwrap();
        // The swapped-in record re-encoded cleanly: same seq, valid CRC,
        // different contents — exactly the Byzantine-lite injection shape.
        let forged = Checkpoint::encode(2, SimTime::from_nanos(2), "t", &99u64).unwrap();
        assert!(s.replace_latest(forged));
        assert_eq!(s.latest().unwrap().seq(), 2);
        assert_eq!(s.latest().unwrap().decode::<u64>().unwrap(), 99);
        // History below the latest record is untouched.
        assert_eq!(s.latest_at_or_before(1).unwrap().seq(), 1);
        assert_eq!(s.stats().commits, 2, "injection is not a commit");
    }

    #[test]
    fn replace_in_flight_contents() {
        let mut s = StableStore::new();
        s.begin_write(ckpt(1)).unwrap();
        s.replace_in_progress(ckpt(2)).unwrap();
        s.commit_write().unwrap();
        assert_eq!(s.latest().unwrap().seq(), 2);
        assert_eq!(s.stats().replacements, 1);
    }

    #[test]
    fn crash_tears_in_flight_write_keeps_committed() {
        let mut s = StableStore::new();
        s.begin_write(ckpt(1)).unwrap();
        s.commit_write().unwrap();
        s.begin_write(ckpt(2)).unwrap();
        s.crash();
        assert_eq!(s.latest().unwrap().seq(), 1, "old checkpoint survives");
        assert!(!s.is_writing());
        assert_eq!(s.stats().torn_writes, 1);
    }

    #[test]
    fn overlapping_writes_rejected() {
        let mut s = StableStore::new();
        s.begin_write(ckpt(1)).unwrap();
        assert_eq!(
            s.begin_write(ckpt(2)),
            Err(StableWriteError::WriteAlreadyInProgress)
        );
    }

    #[test]
    fn commit_without_begin_rejected() {
        let mut s = StableStore::new();
        assert!(matches!(
            s.commit_write(),
            Err(StableWriteError::NoWriteInProgress)
        ));
        assert_eq!(
            s.replace_in_progress(ckpt(0)),
            Err(StableWriteError::NoWriteInProgress)
        );
    }

    #[test]
    fn crash_on_idle_store_is_harmless() {
        let mut s = StableStore::new();
        s.crash();
        assert!(s.latest().is_none());
        assert_eq!(s.stats().torn_writes, 0);
    }

    #[test]
    fn history_is_retained_and_addressable() {
        let mut s = StableStore::new();
        for seq in 1..=3 {
            s.begin_write(ckpt(seq)).unwrap();
            s.commit_write().unwrap();
        }
        assert_eq!(s.latest().unwrap().seq(), 3);
        assert_eq!(s.by_seq(2).unwrap().seq(), 2);
        assert!(s.by_seq(9).is_none());
        assert_eq!(s.latest_at_or_before(2).unwrap().seq(), 2);
        assert_eq!(s.latest_at_or_before(99).unwrap().seq(), 3);
        assert!(s.latest_at_or_before(0).is_none());
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut s = StableStore::with_retention(2);
        for seq in 1..=4 {
            s.begin_write(ckpt(seq)).unwrap();
            s.commit_write().unwrap();
        }
        assert!(s.by_seq(1).is_none());
        assert!(s.by_seq(2).is_none());
        assert_eq!(s.by_seq(3).unwrap().seq(), 3);
        assert_eq!(s.latest().unwrap().seq(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one checkpoint")]
    fn zero_retention_rejected() {
        StableStore::with_retention(0);
    }
}
