//! CRC-32 (IEEE 802.3) for checkpoint integrity.

/// Computes the CRC-32/ISO-HDLC checksum of `data` (the one used by zip,
/// Ethernet, PNG).
///
/// # Example
///
/// ```rust
/// use synergy_storage::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let original = b"checkpoint state bytes".to_vec();
        let base = crc32(&original);
        for bit in 0..original.len() * 8 {
            let mut corrupted = original.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), base, "undetected flip at bit {bit}");
        }
    }

    #[test]
    fn differs_for_reordered_bytes() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
