//! CRC-32 (IEEE 802.3) for checkpoint integrity.

/// Computes the CRC-32/ISO-HDLC checksum of `data` (the one used by zip,
/// Ethernet, PNG).
///
/// Implemented slice-by-8: eight table lookups fold one 64-bit chunk per
/// step, breaking the byte-at-a-time serial dependency. The function is
/// bit-identical to the classic single-table loop (the tail below), so
/// checksums stored in existing checkpoints stay valid.
///
/// # Example
///
/// ```rust
/// use synergy_storage::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLES[0][idx];
    }
    !crc
}

/// `TABLES[0]` is the classic CRC-32 table; `TABLES[n][i]` extends it with
/// `n` extra zero bytes, which is what lets eight bytes fold in one step.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference byte-at-a-time implementation slice-by-8 must match.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFF_u32;
        for &byte in data {
            let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLES[0][idx];
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn slice_by_8_matches_bytewise_at_every_length() {
        // Cover all chunk/remainder splits around the 8-byte fold width.
        let data: Vec<u8> = (0..257u16)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "mismatch at length {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let original = b"checkpoint state bytes".to_vec();
        let base = crc32(&original);
        for bit in 0..original.len() * 8 {
            let mut corrupted = original.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), base, "undetected flip at bit {bit}");
        }
    }

    #[test]
    fn differs_for_reordered_bytes() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
