//! The checkpoint record shared by volatile and stable stores.

use core::fmt;
use std::sync::Arc;

use synergy_codec::{codec_struct, Codec};
use synergy_des::SimTime;

use crate::codec::{self, CodecError};
use crate::crc::crc32;

/// Errors from encoding or decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The binary codec failed.
    Codec(CodecError),
    /// Stored CRC does not match the data (corruption or type mismatch).
    CrcMismatch {
        /// CRC recorded when the checkpoint was taken.
        expected: u32,
        /// CRC of the bytes as read back.
        actual: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
            CheckpointError::CrcMismatch { expected, actual } => write!(
                f,
                "checkpoint crc mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Codec(e) => Some(e),
            CheckpointError::CrcMismatch { .. } => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// A snapshot of one process's state, ready for volatile or stable storage.
///
/// The state is stored in the [`codec`](crate::codec) binary format and
/// guarded by a CRC-32, so corruption (and decoding with the wrong type) is
/// detected rather than silently accepted.
///
/// The serialized bytes live behind an `Arc<[u8]>`: cloning a checkpoint —
/// the adapted TB protocol's volatile→stable dirty-copy, epoch-line
/// selection, payload bundling — bumps a refcount instead of deep-copying
/// the state. `Arc<[u8]>` encodes byte-identically to `Vec<u8>`, so the wire
/// format (and every committed CRC) is unchanged.
///
/// # Example
///
/// ```rust
/// use synergy_des::SimTime;
/// use synergy_storage::Checkpoint;
///
/// let ckpt = Checkpoint::encode(3, SimTime::from_secs_f64(1.5), "type1", &(42u64, true))?;
/// let (counter, flag): (u64, bool) = ckpt.decode()?;
/// assert_eq!((counter, flag), (42, true));
/// assert_eq!(ckpt.seq(), 3);
/// # Ok::<(), synergy_storage::CheckpointError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    seq: u64,
    taken_at_nanos: u64,
    label: String,
    data: Arc<[u8]>,
    crc: u32,
}

codec_struct!(Checkpoint {
    seq,
    taken_at_nanos,
    label,
    data,
    crc
});

impl Checkpoint {
    /// Serializes `state` into a new checkpoint record.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Codec`] when `state` cannot be represented
    /// in the binary format (e.g. unknown-length sequences).
    pub fn encode<T: Codec>(
        seq: u64,
        taken_at: SimTime,
        label: impl Into<String>,
        state: &T,
    ) -> Result<Self, CheckpointError> {
        let mut scratch = Vec::new();
        Self::encode_with_scratch(seq, taken_at, label, state, &mut scratch)
    }

    /// Serializes `state` through a caller-owned scratch buffer: encode →
    /// CRC both run against `scratch` (whose capacity is reused across
    /// calls), and the only fresh allocation is the final shared `Arc<[u8]>`
    /// copy. Hot paths that checkpoint repeatedly should hold one scratch
    /// `Vec` and call this.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Codec`] when `state` cannot be represented
    /// in the binary format.
    pub fn encode_with_scratch<T: Codec>(
        seq: u64,
        taken_at: SimTime,
        label: impl Into<String>,
        state: &T,
        scratch: &mut Vec<u8>,
    ) -> Result<Self, CheckpointError> {
        codec::to_bytes_into(state, scratch)?;
        let crc = crc32(scratch);
        Ok(Checkpoint {
            seq,
            taken_at_nanos: taken_at.as_nanos(),
            label: label.into(),
            data: scratch.as_slice().into(),
            crc,
        })
    }

    /// Rebuilds a checkpoint from already-serialized state bytes, recomputing
    /// the CRC. This is the reconstruction path for layered stores (the
    /// archive's delta chain) that persist a *transformed* record and must
    /// reproduce the original byte-identically: for any checkpoint built by
    /// [`encode`](Self::encode), `from_raw_parts` over the same metadata and
    /// [`shared_data`](Self::shared_data) yields an equal record.
    pub fn from_raw_parts(
        seq: u64,
        taken_at: SimTime,
        label: impl Into<String>,
        data: Arc<[u8]>,
    ) -> Self {
        let crc = crc32(&data);
        Checkpoint {
            seq,
            taken_at_nanos: taken_at.as_nanos(),
            label: label.into(),
            data,
            crc,
        }
    }

    /// Deserializes the stored state.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::CrcMismatch`] when the bytes were corrupted
    /// and [`CheckpointError::Codec`] when they do not decode as `T`.
    pub fn decode<T: Codec>(&self) -> Result<T, CheckpointError> {
        let actual = crc32(&self.data);
        if actual != self.crc {
            return Err(CheckpointError::CrcMismatch {
                expected: self.crc,
                actual,
            });
        }
        Ok(codec::from_bytes(&self.data)?)
    }

    /// The checkpoint sequence number (MDCD volatile counter or TB `Ndc`).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// True simulation instant at which the snapshot was taken; recovery
    /// metrics compute rollback distance from this.
    pub fn taken_at(&self) -> SimTime {
        SimTime::from_nanos(self.taken_at_nanos)
    }

    /// The label supplied at encode time (`"type1"`, `"pseudo"`, ...).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Size of the serialized state in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// The serialized state, shared. Cloning the returned handle is a
    /// refcount bump.
    pub fn shared_data(&self) -> Arc<[u8]> {
        Arc::clone(&self.data)
    }

    /// Flips one bit of the stored state — fault injection for tests that
    /// verify corruption is detected. The flipped copy is private to this
    /// record: other holders of the shared bytes are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint holds no data bytes.
    pub fn corrupt_bit(&mut self, bit: usize) {
        assert!(!self.data.is_empty(), "cannot corrupt an empty checkpoint");
        let mut bytes = self.data.to_vec();
        let i = (bit / 8) % bytes.len();
        bytes[i] ^= 1 << (bit % 8);
        self.data = bytes.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(PartialEq, Debug)]
    struct AppState {
        counter: u64,
        pending: Vec<String>,
    }

    codec_struct!(AppState { counter, pending });

    fn sample() -> AppState {
        AppState {
            counter: 99,
            pending: vec!["m1".into(), "m2".into()],
        }
    }

    #[test]
    fn roundtrip_preserves_state_and_metadata() {
        let t = SimTime::from_secs_f64(2.5);
        let ckpt = Checkpoint::encode(7, t, "pseudo", &sample()).unwrap();
        assert_eq!(ckpt.seq(), 7);
        assert_eq!(ckpt.taken_at(), t);
        assert_eq!(ckpt.label(), "pseudo");
        assert!(ckpt.size_bytes() > 0);
        let back: AppState = ckpt.decode().unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn corruption_is_detected() {
        let mut ckpt = Checkpoint::encode(0, SimTime::ZERO, "t", &sample()).unwrap();
        ckpt.corrupt_bit(13);
        match ckpt.decode::<AppState>() {
            Err(CheckpointError::CrcMismatch { .. }) => {}
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn double_corruption_restores() {
        let mut ckpt = Checkpoint::encode(0, SimTime::ZERO, "t", &sample()).unwrap();
        ckpt.corrupt_bit(13);
        ckpt.corrupt_bit(13);
        assert!(ckpt.decode::<AppState>().is_ok());
    }

    #[test]
    fn scratch_encode_matches_plain_encode() {
        let t = SimTime::from_secs_f64(2.5);
        let plain = Checkpoint::encode(7, t, "pseudo", &sample()).unwrap();
        let mut scratch = Vec::new();
        let first = Checkpoint::encode_with_scratch(7, t, "pseudo", &sample(), &mut scratch);
        assert_eq!(first.unwrap(), plain);
        // Reuse the (now dirty) scratch for a different state: identical
        // record again, no stale bytes.
        let again = Checkpoint::encode_with_scratch(7, t, "pseudo", &sample(), &mut scratch);
        assert_eq!(again.unwrap(), plain);
    }

    #[test]
    fn corruption_is_private_to_the_corrupted_record() {
        let ckpt = Checkpoint::encode(0, SimTime::ZERO, "t", &sample()).unwrap();
        let mut shared = ckpt.clone();
        shared.corrupt_bit(13);
        assert!(shared.decode::<AppState>().is_err());
        assert_eq!(ckpt.decode::<AppState>().unwrap(), sample());
    }

    #[test]
    fn decoding_with_wrong_shape_fails() {
        let ckpt = Checkpoint::encode(0, SimTime::ZERO, "t", &42u8).unwrap();
        // u8 is one byte; u64 needs eight — must error, not garbage.
        assert!(ckpt.decode::<u64>().is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::CrcMismatch {
            expected: 1,
            actual: 2,
        };
        let text = e.to_string();
        assert!(text.contains("crc mismatch"), "{text}");
    }
}
