//! Disk latency model.

use synergy_des::SimDuration;

/// A simple affine disk-write cost model: `base + per_kib * ceil(bytes/1024)`.
///
/// The TB protocol overlaps its blocking period with the stable write, so
/// write duration matters for overhead accounting (how long a process is
/// blocked in practice), not for protocol correctness.
///
/// # Example
///
/// ```rust
/// use synergy_des::SimDuration;
/// use synergy_storage::DiskModel;
///
/// let disk = DiskModel::new(SimDuration::from_millis(5), SimDuration::from_micros(10));
/// assert_eq!(disk.write_duration(0), SimDuration::from_millis(5));
/// assert_eq!(
///     disk.write_duration(2048),
///     SimDuration::from_millis(5) + SimDuration::from_micros(20)
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskModel {
    base: SimDuration,
    per_kib: SimDuration,
}

impl DiskModel {
    /// Creates a model with a fixed seek/sync cost and a per-KiB transfer
    /// cost.
    pub fn new(base: SimDuration, per_kib: SimDuration) -> Self {
        DiskModel { base, per_kib }
    }

    /// A year-2000 commodity disk: ~8 ms seek+sync, ~50 µs per KiB.
    pub fn commodity() -> Self {
        DiskModel::new(SimDuration::from_millis(8), SimDuration::from_micros(50))
    }

    /// An instantaneous disk (for tests isolating protocol logic).
    pub fn instant() -> Self {
        DiskModel::new(SimDuration::ZERO, SimDuration::ZERO)
    }

    /// How long writing `bytes` takes.
    pub fn write_duration(&self, bytes: usize) -> SimDuration {
        let kib = (bytes as u64).div_ceil(1024);
        self.base + self.per_kib * kib
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::commodity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_costs_base_only() {
        let d = DiskModel::new(SimDuration::from_millis(1), SimDuration::from_micros(100));
        assert_eq!(d.write_duration(0), SimDuration::from_millis(1));
    }

    #[test]
    fn partial_kib_rounds_up() {
        let d = DiskModel::new(SimDuration::ZERO, SimDuration::from_micros(100));
        assert_eq!(d.write_duration(1), SimDuration::from_micros(100));
        assert_eq!(d.write_duration(1024), SimDuration::from_micros(100));
        assert_eq!(d.write_duration(1025), SimDuration::from_micros(200));
    }

    #[test]
    fn instant_disk_is_free() {
        assert_eq!(
            DiskModel::instant().write_duration(1 << 20),
            SimDuration::ZERO
        );
    }

    #[test]
    fn commodity_is_monotone_in_size() {
        let d = DiskModel::commodity();
        assert!(d.write_duration(10_000) < d.write_duration(100_000));
    }
}
