//! The checkpoint binary format, re-exported from [`synergy_codec`].
//!
//! The format lived here historically; it is now the workspace-wide
//! `synergy-codec` crate so protocol crates can serialize without depending
//! on the storage layer. This module keeps the `synergy_storage::codec::*`
//! paths working.
//!
//! # Example
//!
//! ```rust
//! use synergy_storage::codec::{from_bytes, to_bytes};
//!
//! let state = (7u64, vec!["a".to_string(), "b".to_string()]);
//! let bytes = to_bytes(&state).unwrap();
//! let back: (u64, Vec<String>) = from_bytes(&bytes).unwrap();
//! assert_eq!(back, state);
//! ```

pub use synergy_codec::{from_bytes, to_bytes, to_bytes_into, Codec, CodecError, Reader};
