//! A compact, non-self-describing binary serde format.
//!
//! Layout rules:
//!
//! * integers: fixed-width little-endian (`u8`..`u128`, `i8`..`i128`);
//! * `bool`: one byte (`0`/`1`, anything else is an error);
//! * `f32`/`f64`: IEEE-754 little-endian bits;
//! * `char`: `u32` scalar value;
//! * `str` / `bytes`: `u64` length prefix + raw bytes;
//! * `Option`: one tag byte (`0` = `None`, `1` = `Some`) + payload;
//! * sequences / maps: `u64` length prefix + elements (unknown-length
//!   sequences are rejected);
//! * structs / tuples: fields in declaration order, no framing;
//! * enums: `u32` variant index + variant payload.
//!
//! The format is not self-describing, so [`from_bytes`] must be called with
//! the exact type that produced the bytes; every [`Checkpoint`]
//! (`crate::Checkpoint`) additionally carries a CRC-32 to catch mismatches
//! and corruption.
//!
//! # Example
//!
//! ```rust
//! use serde::{Deserialize, Serialize};
//! use synergy_storage::codec::{from_bytes, to_bytes};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct State { counter: u64, log: Vec<String> }
//!
//! let state = State { counter: 7, log: vec!["a".into(), "b".into()] };
//! let bytes = to_bytes(&state).unwrap();
//! let back: State = from_bytes(&bytes).unwrap();
//! assert_eq!(back, state);
//! ```

use core::fmt;

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
use serde::{ser, Deserialize, Serialize};

/// Errors produced by the binary codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A `Display` message from serde itself.
    Message(String),
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Bytes remained after the value was fully read.
    TrailingBytes(usize),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` scalar value was invalid.
    InvalidChar(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// A length prefix exceeded the remaining input.
    LengthOverflow(u64),
    /// The format cannot represent this construct.
    Unsupported(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Message(m) => write!(f, "{m}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            CodecError::InvalidChar(c) => write!(f, "invalid char scalar {c}"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::InvalidOptionTag(b) => write!(f, "invalid option tag {b}"),
            CodecError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds input"),
            CodecError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Returns [`CodecError::Unsupported`] for unknown-length sequences and
/// [`CodecError::Message`] for type-driven serde failures.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = BinSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value of type `T` from `bytes`, requiring every byte to be
/// consumed.
///
/// # Errors
///
/// Returns a [`CodecError`] when the input is truncated, malformed, or longer
/// than the encoded value.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(CodecError::TrailingBytes(de.input.len()))
    }
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn write_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl<'a> ser::Serializer for &'a mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.write_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.write_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("unknown-length sequence"))?;
        self.write_len(len);
        Ok(Compound { ser: self })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("unknown-length map"))?;
        self.write_len(len);
        Ok(Compound { ser: self })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Compound<'a> {
    ser: &'a mut BinSerializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn read_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let len = self.read_u64()?;
        if len > self.input.len() as u64 {
            return Err(CodecError::LengthOverflow(len));
        }
        Ok(len as usize)
    }
}

macro_rules! de_int {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().expect("sized")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("deserialize_any (not self-describing)"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError::InvalidBool(b)),
        }
    }

    de_int!(deserialize_i8, visit_i8, i8, 1);
    de_int!(deserialize_i16, visit_i16, i16, 2);
    de_int!(deserialize_i32, visit_i32, i32, 4);
    de_int!(deserialize_i64, visit_i64, i64, 8);
    de_int!(deserialize_i128, visit_i128, i128, 16);
    de_int!(deserialize_u16, visit_u16, u16, 2);
    de_int!(deserialize_u32, visit_u32, u32, 4);
    de_int!(deserialize_u64, visit_u64, u64, 8);
    de_int!(deserialize_u128, visit_u128, u128, 16);
    de_int!(deserialize_f32, visit_f32, f32, 4);
    de_int!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let v = self.read_u8()?;
        visitor.visit_u8(v)
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let scalar = self.read_u32()?;
        let c = char::from_u32(scalar).ok_or(CodecError::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError::InvalidOptionTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(VariantTag { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("identifier"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("ignored_any (not self-describing)"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct VariantTag<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for VariantTag<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let index = self.de.read_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for VariantTag<'_, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn roundtrip<T>(value: &T)
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + fmt::Debug,
    {
        let bytes = to_bytes(value).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, value);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        data: Vec<u8>,
        ratio: f64,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Kind {
        Unit,
        One(u32),
        Pair(u8, u8),
        Struct { a: bool, b: Option<i64> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Everything {
        flag: bool,
        small: i8,
        big: u128,
        ch: char,
        text: String,
        opt_none: Option<u16>,
        opt_some: Option<u16>,
        list: Vec<Nested>,
        map: BTreeMap<String, u64>,
        kinds: Vec<Kind>,
        tuple: (u8, String, f32),
        unit: (),
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0xAB_u8);
        roundtrip(&-123_i64);
        roundtrip(&u128::MAX);
        roundtrip(&1.618_033_98_f64);
        roundtrip(&'λ');
        roundtrip(&"héllo wörld".to_string());
        roundtrip(&Option::<u32>::None);
        roundtrip(&Some(99_u32));
    }

    #[test]
    fn compound_roundtrip() {
        let value = Everything {
            flag: true,
            small: -5,
            big: 1 << 100,
            ch: '☃',
            text: "checkpoint".into(),
            opt_none: None,
            opt_some: Some(7),
            list: vec![
                Nested {
                    name: "a".into(),
                    data: vec![1, 2, 3],
                    ratio: 0.5,
                },
                Nested {
                    name: String::new(),
                    data: vec![],
                    ratio: -1.0,
                },
            ],
            map: BTreeMap::from([("x".into(), 1), ("y".into(), 2)]),
            kinds: vec![
                Kind::Unit,
                Kind::One(42),
                Kind::Pair(1, 2),
                Kind::Struct {
                    a: false,
                    b: Some(-9),
                },
            ],
            tuple: (255, "t".into(), 1.25),
            unit: (),
        };
        roundtrip(&value);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&12345678_u64).unwrap();
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert_eq!(err, CodecError::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1_u8).unwrap();
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u8>(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(from_bytes::<bool>(&[2]), Err(CodecError::InvalidBool(2)));
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert_eq!(
            from_bytes::<Option<u8>>(&[9, 0]),
            Err(CodecError::InvalidOptionTag(9))
        );
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A sequence claiming u64::MAX elements must fail fast, not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(CodecError::LengthOverflow(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(from_bytes::<String>(&bytes), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = vec!["a".to_string(), "bb".to_string()];
        assert_eq!(to_bytes(&v).unwrap(), to_bytes(&v).unwrap());
    }

    #[test]
    fn fixed_width_integer_layout() {
        // The format contract: u32 is exactly 4 LE bytes.
        assert_eq!(to_bytes(&0x0403_0201_u32).unwrap(), vec![1, 2, 3, 4]);
        // Strings are 8-byte length + bytes.
        let s = to_bytes("ab").unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(&s[8..], b"ab");
    }

    #[test]
    fn error_display_messages() {
        assert!(CodecError::UnexpectedEof.to_string().contains("end of input"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
    }
}
