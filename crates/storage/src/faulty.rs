//! A fault-injecting [`Stable`] wrapper for chaos campaigns.
//!
//! [`FaultyStable`] sits between the TB runtime and a real backend
//! (typically [`DiskStableStore`](crate::DiskStableStore)) and fails
//! selected operations with [`StableWriteError::Io`] — the error a real
//! `fsync` failure surfaces — without touching the backend. The faults are
//! *transient*: each [`DiskFault`] fails the first
//! [`times`](DiskFault::times) attempts of one operation at one checkpoint
//! sequence number, then lets retries through. That models the flaky-disk
//! regime the TB runtime's bounded retry is built to mask; a fault with a
//! large `times` models a persistently failing device, which the runtime
//! surfaces instead of masking.
//!
//! Torn writes and read-back bit-rot need no wrapper: a torn write is a
//! real `SIGKILL` between begin and commit (the campaign's crash injector
//! does that for real), and bit-rot is a byte flipped in a committed
//! `ckpt-*.bin` file by the orchestrator, exercising the CRC-verified
//! reload path of the disk store itself.

use synergy_codec::{codec_struct, Codec, CodecError, Reader};

use crate::checkpoint::Checkpoint;
use crate::stable::{Stable, StableStats, StableWriteError};

/// Which stable-store operation a [`DiskFault`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskOp {
    /// The `begin_write` fsync of the in-flight file.
    Begin,
    /// The `replace_in_progress` rewrite of the in-flight file.
    Replace,
    /// The `commit_write` rename/directory-fsync.
    Commit,
}

impl Codec for DiskOp {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u32 = match self {
            DiskOp::Begin => 0,
            DiskOp::Replace => 1,
            DiskOp::Commit => 2,
        };
        tag.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(r)? {
            0 => Ok(DiskOp::Begin),
            1 => Ok(DiskOp::Replace),
            2 => Ok(DiskOp::Commit),
            other => Err(CodecError::InvalidVariant(other)),
        }
    }
}

/// One injected failure: the first `times` attempts of `op` for the
/// checkpoint with sequence number `seq` fail with an I/O error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskFault {
    /// Checkpoint sequence number (epoch) the fault targets.
    pub seq: u64,
    /// The operation to fail.
    pub op: DiskOp,
    /// How many consecutive attempts fail before the fault is spent.
    pub times: u32,
}

codec_struct!(DiskFault { seq, op, times });

/// A deterministic schedule of stable-storage faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// The injected failures; order is irrelevant, matching is by
    /// `(seq, op)`.
    pub faults: Vec<DiskFault>,
}

codec_struct!(DiskFaultPlan { faults });

impl DiskFaultPlan {
    /// A plan that injects nothing.
    pub fn inert() -> Self {
        DiskFaultPlan::default()
    }

    /// Whether the plan injects any fault at all.
    pub fn is_inert(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Fault-injecting wrapper over any [`Stable`] backend (see module docs).
#[derive(Debug)]
pub struct FaultyStable<S: Stable> {
    inner: S,
    faults: Vec<DiskFault>,
    /// Sequence number of the in-flight write, tracked so `commit_write`
    /// (which takes no checkpoint argument) can be matched to its epoch.
    inflight_seq: Option<u64>,
    injected: u64,
}

impl<S: Stable> FaultyStable<S> {
    /// Wraps `inner`, applying `plan` to subsequent operations.
    pub fn new(inner: S, plan: DiskFaultPlan) -> Self {
        FaultyStable {
            inner,
            faults: plan.faults,
            inflight_seq: None,
            injected: 0,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// How many operations have been failed by injection so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected
    }

    /// Consumes one charge of a matching unspent fault, if any.
    fn take(&mut self, seq: u64, op: DiskOp) -> bool {
        for fault in &mut self.faults {
            if fault.seq == seq && fault.op == op && fault.times > 0 {
                fault.times -= 1;
                self.injected += 1;
                return true;
            }
        }
        false
    }
}

impl<S: Stable> Stable for FaultyStable<S> {
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        let seq = checkpoint.seq();
        if self.take(seq, DiskOp::Begin) {
            return Err(StableWriteError::Io(format!(
                "injected fsync failure (begin, epoch {seq})"
            )));
        }
        self.inner.begin_write(checkpoint)?;
        self.inflight_seq = Some(seq);
        Ok(())
    }

    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        let seq = checkpoint.seq();
        if self.take(seq, DiskOp::Replace) {
            return Err(StableWriteError::Io(format!(
                "injected fsync failure (replace, epoch {seq})"
            )));
        }
        self.inner.replace_in_progress(checkpoint)?;
        self.inflight_seq = Some(seq);
        Ok(())
    }

    fn commit_write(&mut self) -> Result<(), StableWriteError> {
        if let Some(seq) = self.inflight_seq {
            if self.take(seq, DiskOp::Commit) {
                // The inner store still holds the in-flight write, so a
                // retry can commit it — exactly a transient rename/fsync
                // failure.
                return Err(StableWriteError::Io(format!(
                    "injected fsync failure (commit, epoch {seq})"
                )));
            }
        }
        self.inner.commit_write()?;
        self.inflight_seq = None;
        Ok(())
    }

    fn abort_write(&mut self) -> bool {
        self.inflight_seq = None;
        self.inner.abort_write()
    }

    fn crash(&mut self) {
        self.inflight_seq = None;
        self.inner.crash();
    }

    fn is_writing(&self) -> bool {
        self.inner.is_writing()
    }

    fn latest_shared(&self) -> Option<Checkpoint> {
        self.inner.latest_shared()
    }

    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint> {
        self.inner.latest_at_or_before_shared(seq)
    }

    fn replace_latest(&mut self, checkpoint: Checkpoint) -> bool {
        // Not in the DiskOp fault vocabulary: injection passes through.
        self.inner.replace_latest(checkpoint)
    }

    fn stats(&self) -> StableStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::StableStore;
    use synergy_des::SimTime;

    fn ckpt(seq: u64) -> Checkpoint {
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "t", &seq).unwrap()
    }

    fn fail(seq: u64, op: DiskOp, times: u32) -> DiskFaultPlan {
        DiskFaultPlan {
            faults: vec![DiskFault { seq, op, times }],
        }
    }

    #[test]
    fn inert_plan_is_transparent() {
        let mut s = FaultyStable::new(StableStore::new(), DiskFaultPlan::inert());
        s.begin_write(ckpt(1)).unwrap();
        s.commit_write().unwrap();
        assert_eq!(s.latest_seq(), Some(1));
        assert_eq!(s.injected_failures(), 0);
    }

    #[test]
    fn begin_fault_is_transient_and_charged() {
        let mut s = FaultyStable::new(StableStore::new(), fail(1, DiskOp::Begin, 2));
        assert!(matches!(
            s.begin_write(ckpt(1)),
            Err(StableWriteError::Io(_))
        ));
        assert!(matches!(
            s.begin_write(ckpt(1)),
            Err(StableWriteError::Io(_))
        ));
        assert!(
            !s.is_writing(),
            "inner store untouched by injected failures"
        );
        s.begin_write(ckpt(1))
            .expect("fault spent after two charges");
        s.commit_write().unwrap();
        assert_eq!(s.latest_seq(), Some(1));
        assert_eq!(s.injected_failures(), 2);
    }

    #[test]
    fn commit_fault_leaves_inflight_write_retryable() {
        let mut s = FaultyStable::new(StableStore::new(), fail(2, DiskOp::Commit, 1));
        s.begin_write(ckpt(2)).unwrap();
        assert!(matches!(s.commit_write(), Err(StableWriteError::Io(_))));
        assert!(s.is_writing(), "in-flight write survives a failed commit");
        s.commit_write().expect("retry commits");
        assert_eq!(s.latest_seq(), Some(2));
    }

    #[test]
    fn faults_only_match_their_epoch_and_op() {
        let mut s = FaultyStable::new(StableStore::new(), fail(3, DiskOp::Begin, 1));
        s.begin_write(ckpt(1)).expect("epoch 1 unaffected");
        s.replace_in_progress(ckpt(1)).expect("replace unaffected");
        s.commit_write().unwrap();
        assert!(matches!(
            s.begin_write(ckpt(3)),
            Err(StableWriteError::Io(_))
        ));
        s.begin_write(ckpt(3)).unwrap();
        s.commit_write().unwrap();
        assert_eq!(s.latest_seq(), Some(3));
    }

    #[test]
    fn plan_roundtrips_through_codec() {
        let plan = DiskFaultPlan {
            faults: vec![
                DiskFault {
                    seq: 2,
                    op: DiskOp::Begin,
                    times: 1,
                },
                DiskFault {
                    seq: 4,
                    op: DiskOp::Commit,
                    times: 2,
                },
            ],
        };
        let bytes = synergy_codec::to_bytes(&plan).expect("encode");
        let back: DiskFaultPlan = synergy_codec::from_bytes(&bytes).expect("decode");
        assert_eq!(back, plan);
        assert!(!back.is_inert());
        assert!(DiskFaultPlan::inert().is_inert());
    }
}
