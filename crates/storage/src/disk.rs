//! A durable [`Stable`] backend: checkpoints as files, two-phase writes as
//! temp-file + `fsync` + atomic rename.
//!
//! The in-memory [`StableStore`](crate::StableStore) *models* stable storage
//! for the simulator; this store *is* stable storage for the cluster
//! runtime, where a hardware fault is a real `SIGKILL` and recovery starts
//! from whatever the filesystem still holds. The mapping of the adapted TB
//! write protocol onto POSIX file semantics:
//!
//! | protocol step           | filesystem action                               |
//! |-------------------------|-------------------------------------------------|
//! | `begin_write`           | write `inflight.tmp`, `fsync` the file          |
//! | `replace_in_progress`   | rewrite `inflight.tmp`, `fsync` the file        |
//! | `commit_write`          | rename to `ckpt-NNN.bin`, `fsync` the directory |
//! | crash before commit     | `inflight.tmp` left behind — a **torn write**   |
//!
//! On [`open`](DiskStableStore::open) the store reloads every committed
//! checkpoint file, verifying the outer frame CRC *and* the
//! [`Checkpoint`]'s own CRC; a leftover `inflight.tmp` is detected as a torn
//! write, counted in [`StableStats::torn_writes`] and discarded, so recovery
//! proceeds from the previous committed checkpoint — exactly the in-memory
//! store's [`crash`](crate::StableStore::crash) semantics, made durable.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::checkpoint::Checkpoint;
use crate::codec;
use crate::crc::crc32;
use crate::stable::{Stable, StableStats, StableWriteError};

/// Magic number opening every checkpoint file (`"SYCK"` little-endian).
const MAGIC: u32 = 0x4B43_5953;
/// Refuse to load absurdly sized records (corrupted length fields).
const MAX_RECORD_LEN: u64 = 256 * 1024 * 1024;
/// Name of the in-flight (uncommitted) write.
const INFLIGHT: &str = "inflight.tmp";

fn io_err(op: &str, path: &Path, e: std::io::Error) -> StableWriteError {
    StableWriteError::Io(format!("{op} {}: {e}", path.display()))
}

/// Serializes a checkpoint into the on-disk frame:
/// `magic · payload_len · payload · crc32(payload)`.
fn frame(ckpt: &Checkpoint) -> Result<Vec<u8>, StableWriteError> {
    let payload = codec::to_bytes(ckpt)
        .map_err(|e| StableWriteError::Io(format!("encode checkpoint: {e}")))?;
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    Ok(out)
}

/// Parses and CRC-verifies an on-disk frame. Any failure — truncation, bad
/// magic, bad CRC, codec error, trailing bytes — yields `None`: the record
/// is treated as never written.
fn unframe(bytes: &[u8]) -> Option<Checkpoint> {
    let magic = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?);
    if magic != MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?);
    if len > MAX_RECORD_LEN {
        return None;
    }
    let len = usize::try_from(len).ok()?;
    let payload = bytes.get(12..12 + len)?;
    let stored_crc = u32::from_le_bytes(bytes.get(12 + len..16 + len)?.try_into().ok()?);
    if bytes.len() != 16 + len || crc32(payload) != stored_crc {
        return None;
    }
    // The frame CRC covers the whole serialized checkpoint, including the
    // checkpoint's own state CRC; the latter is re-verified at decode time.
    codec::from_bytes(payload).ok()
}

/// Durable stable storage for one process: committed checkpoints are files
/// under a directory, writes are two-phase and survive `SIGKILL` at any
/// instant with either the old or the new contents — never a half state.
///
/// # Example
///
/// ```rust
/// use synergy_des::SimTime;
/// use synergy_storage::{Checkpoint, DiskStableStore, Stable};
///
/// let dir = std::env::temp_dir().join(format!("syck-doc-{}", std::process::id()));
/// let mut disk = DiskStableStore::open(&dir)?;
/// disk.begin_write(Checkpoint::encode(1, SimTime::ZERO, "epoch-1", &7u64)?)?;
/// disk.commit_write()?;
/// drop(disk);
/// // A fresh process sees the committed checkpoint, CRC-verified:
/// let reloaded = DiskStableStore::open(&dir)?;
/// assert_eq!(reloaded.latest_shared().unwrap().decode::<u64>()?, 7);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DiskStableStore {
    dir: PathBuf,
    /// Committed history, oldest first, as `(file index, checkpoint)`.
    committed: Vec<(u64, Checkpoint)>,
    in_progress: Option<Checkpoint>,
    next_index: u64,
    stats: StableStats,
    retain: usize,
}

impl DiskStableStore {
    /// Opens (creating if needed) the store at `dir`, retaining the last 8
    /// committed checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::Io`] if the directory cannot be created
    /// or scanned.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StableWriteError> {
        Self::open_with_retention(dir, 8)
    }

    /// Opens the store, retaining the last `retain` committed checkpoints on
    /// disk.
    ///
    /// Reload semantics: committed `ckpt-*.bin` files are loaded oldest to
    /// newest with both CRCs verified (corrupt records are skipped); a
    /// leftover in-flight temp file is a **torn write** — counted, deleted,
    /// and the previous committed checkpoint remains the latest.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::Io`] on filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn open_with_retention(
        dir: impl Into<PathBuf>,
        retain: usize,
    ) -> Result<Self, StableWriteError> {
        assert!(retain > 0, "must retain at least one checkpoint");
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        let mut stats = StableStats::default();
        let mut committed: Vec<(u64, Checkpoint)> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("read dir", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir entry", &dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == INFLIGHT {
                // A write began but never committed before the crash.
                stats.torn_writes += 1;
                fs::remove_file(entry.path()).map_err(|e| io_err("remove", &entry.path(), e))?;
                continue;
            }
            let Some(index) = parse_index(name) else {
                continue;
            };
            let path = entry.path();
            match fs::read(&path) {
                Ok(bytes) => match unframe(&bytes) {
                    Some(ckpt) => committed.push((index, ckpt)),
                    // Corrupt committed record (bit-rot): unusable, count it
                    // and treat it as absent so recovery falls back to the
                    // previous committed checkpoint.
                    None => {
                        stats.corrupt_records += 1;
                        fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
                    }
                },
                Err(e) => return Err(io_err("read", &path, e)),
            }
        }
        committed.sort_by_key(|(index, _)| *index);
        let next_index = committed.last().map_or(0, |(i, _)| i + 1);
        Ok(DiskStableStore {
            dir,
            committed,
            in_progress: None,
            next_index,
            stats,
            retain,
        })
    }

    /// The directory backing this store.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Shared handles to every retained committed checkpoint, oldest first
    /// (commit order — which is file-index order, not sequence-number order:
    /// a post-rollback epoch reuses sequence numbers with a fresh index).
    pub fn committed_shared(&self) -> Vec<Checkpoint> {
        self.committed.iter().map(|(_, c)| c.clone()).collect()
    }

    /// File index and path of the newest committed record, if any.
    pub fn newest_record_file(&self) -> Option<(u64, PathBuf)> {
        self.committed
            .last()
            .map(|(i, _)| (*i, self.dir.join(file_name(*i))))
    }

    /// Reads and CRC-verifies one committed record file. Any failure —
    /// truncation, bad magic, bad CRC, codec error — yields `None`; the
    /// record is unusable. Exposed so out-of-process tooling (the chaos
    /// orchestrator's layout-aware fault injection, the archive tier's
    /// rehydration) can inspect records without reimplementing the frame.
    pub fn read_record_file(path: &Path) -> Option<Checkpoint> {
        unframe(&fs::read(path).ok()?)
    }

    /// Writes `ckpt` to `path` as a committed record with a valid frame.
    /// The counterpart of [`read_record_file`](Self::read_record_file) for
    /// layout-aware tooling — e.g. the chaos orchestrator fabricating
    /// record-level corruption that must still pass the frame CRC so it is
    /// only caught by a verification layer above the frame.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::Io`] on encode or filesystem failure.
    pub fn write_record_file(path: &Path, ckpt: &Checkpoint) -> Result<(), StableWriteError> {
        fs::write(path, frame(ckpt)?).map_err(|e| io_err("write record", path, e))
    }

    /// The on-disk file name of a committed record (`ckpt-NNNNNNNNNN.bin`).
    pub fn record_file_name(index: u64) -> String {
        file_name(index)
    }

    /// Parses a committed-record file name back to its index.
    pub fn parse_record_file_name(name: &str) -> Option<u64> {
        parse_index(name)
    }

    fn inflight_path(&self) -> PathBuf {
        self.dir.join(INFLIGHT)
    }

    /// Writes `ckpt` to the in-flight temp file and fsyncs it, so the bytes
    /// are durable *as uncommitted* before the caller proceeds.
    fn write_inflight(&self, ckpt: &Checkpoint) -> Result<(), StableWriteError> {
        let path = self.inflight_path();
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        f.write_all(&frame(ckpt)?)
            .map_err(|e| io_err("write", &path, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &path, e))?;
        Ok(())
    }

    fn fsync_dir(&self) -> Result<(), StableWriteError> {
        let d = File::open(&self.dir).map_err(|e| io_err("open dir", &self.dir, e))?;
        d.sync_all().map_err(|e| io_err("fsync dir", &self.dir, e))
    }
}

fn parse_index(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

fn file_name(index: u64) -> String {
    format!("ckpt-{index:010}.bin")
}

impl Stable for DiskStableStore {
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        if self.in_progress.is_some() {
            return Err(StableWriteError::WriteAlreadyInProgress);
        }
        self.write_inflight(&checkpoint)?;
        self.in_progress = Some(checkpoint);
        Ok(())
    }

    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        if self.in_progress.is_none() {
            return Err(StableWriteError::NoWriteInProgress);
        }
        self.write_inflight(&checkpoint)?;
        self.in_progress = Some(checkpoint);
        self.stats.replacements += 1;
        Ok(())
    }

    fn commit_write(&mut self) -> Result<(), StableWriteError> {
        let ckpt = self
            .in_progress
            .take()
            .ok_or(StableWriteError::NoWriteInProgress)?;
        let index = self.next_index;
        let target = self.dir.join(file_name(index));
        // The rename is the atomic commit point: before it the record is
        // `inflight.tmp` (torn on crash), after it the record is durable.
        fs::rename(self.inflight_path(), &target).map_err(|e| io_err("rename", &target, e))?;
        self.fsync_dir()?;
        self.next_index += 1;
        self.committed.push((index, ckpt));
        while self.committed.len() > self.retain {
            let (old, _) = self.committed.remove(0);
            let path = self.dir.join(file_name(old));
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
        }
        self.stats.commits += 1;
        Ok(())
    }

    fn abort_write(&mut self) -> bool {
        if self.in_progress.take().is_some() {
            // Best-effort cleanup: a leftover temp file would otherwise be
            // (correctly, if conservatively) counted as torn on reload.
            let _ = fs::remove_file(self.inflight_path());
            true
        } else {
            false
        }
    }

    fn crash(&mut self) {
        // Simulated crash: forget the in-flight write but *leave the temp
        // file on disk*, which is exactly what a killed process leaves
        // behind; reopening the directory detects and counts it.
        if self.in_progress.take().is_some() {
            self.stats.torn_writes += 1;
        }
    }

    fn is_writing(&self) -> bool {
        self.in_progress.is_some()
    }

    fn latest_shared(&self) -> Option<Checkpoint> {
        self.committed.last().map(|(_, c)| c.clone())
    }

    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint> {
        self.committed
            .iter()
            .rev()
            .find(|(_, c)| c.seq() <= seq)
            .map(|(_, c)| c.clone())
    }

    fn replace_latest(&mut self, checkpoint: Checkpoint) -> bool {
        // Byzantine-lite injection: rewrite the newest committed record
        // both on disk and in the cache. Best-effort — a failed rewrite
        // reports "unsupported" rather than corrupting bookkeeping.
        let Some((index, slot)) = self.committed.last_mut().map(|(i, c)| (*i, c)) else {
            return false;
        };
        let path = self.dir.join(file_name(index));
        let Ok(bytes) = frame(&checkpoint) else {
            return false;
        };
        if fs::write(&path, bytes).is_err() {
            return false;
        }
        *slot = checkpoint;
        true
    }

    fn stats(&self) -> StableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use synergy_des::SimTime;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("syck-test-{}-{tag}-{n}", std::process::id()))
    }

    fn ckpt(seq: u64, value: u64) -> Checkpoint {
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "t", &value).unwrap()
    }

    #[test]
    fn committed_checkpoints_survive_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut s = DiskStableStore::open(&dir).unwrap();
            s.begin_write(ckpt(1, 11)).unwrap();
            s.commit_write().unwrap();
            s.begin_write(ckpt(2, 22)).unwrap();
            s.replace_in_progress(ckpt(2, 33)).unwrap();
            s.commit_write().unwrap();
            assert_eq!(s.stats().commits, 2);
            assert_eq!(s.stats().replacements, 1);
        }
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.latest_seq(), Some(2));
        assert_eq!(s.latest_shared().unwrap().decode::<u64>().unwrap(), 33);
        assert_eq!(s.latest_at_or_before_shared(1).unwrap().seq(), 1);
        assert_eq!(s.stats().torn_writes, 0, "clean shutdown tears nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_detected_on_reload_previous_checkpoint_used() {
        let dir = tmp_dir("torn");
        {
            let mut s = DiskStableStore::open(&dir).unwrap();
            s.begin_write(ckpt(1, 1)).unwrap();
            s.commit_write().unwrap();
            s.begin_write(ckpt(2, 2)).unwrap();
            // Dropped mid-write: the temp file stays behind, like a SIGKILL
            // between begin and commit.
        }
        assert!(dir.join(INFLIGHT).exists(), "torn temp file left on disk");
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.stats().torn_writes, 1, "torn write detected on reload");
        assert_eq!(
            s.latest_seq(),
            Some(1),
            "previous committed checkpoint used"
        );
        assert!(!dir.join(INFLIGHT).exists(), "torn record discarded");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_inflight_counts_as_torn() {
        let dir = tmp_dir("truncated");
        {
            let mut s = DiskStableStore::open(&dir).unwrap();
            s.begin_write(ckpt(1, 1)).unwrap();
            s.commit_write().unwrap();
        }
        // A write killed mid-`write_all`: only half the frame reached disk.
        let full = frame(&ckpt(2, 2)).unwrap();
        fs::write(dir.join(INFLIGHT), &full[..full.len() / 2]).unwrap();
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.stats().torn_writes, 1);
        assert_eq!(s.latest_seq(), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_committed_record_fails_crc_and_is_skipped() {
        let dir = tmp_dir("corrupt");
        {
            let mut s = DiskStableStore::open(&dir).unwrap();
            for seq in 1..=2 {
                s.begin_write(ckpt(seq, seq * 10)).unwrap();
                s.commit_write().unwrap();
            }
        }
        // Flip one payload byte of the newest committed record.
        let newest = dir.join(file_name(1));
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.latest_seq(), Some(1), "corrupt record must not be served");
        assert_eq!(s.latest_shared().unwrap().decode::<u64>().unwrap(), 10);
        assert_eq!(s.stats().corrupt_records, 1, "bit-rot is counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_bit_rot_falls_back_to_previous_checkpoint() {
        // The weakest possible corruption — one flipped bit, anywhere in the
        // newest record — must be caught by CRC verification and recovery
        // must fall back to the previous committed checkpoint.
        let dir = tmp_dir("bitrot");
        {
            let mut s = DiskStableStore::open(&dir).unwrap();
            for seq in 1..=2 {
                s.begin_write(ckpt(seq, seq * 100)).unwrap();
                s.commit_write().unwrap();
            }
        }
        let newest = dir.join(file_name(1));
        let pristine = fs::read(&newest).unwrap();
        // A handful of positions spread across the frame: magic, length
        // field, payload head/middle/tail, and the stored CRC itself.
        let positions = [
            0,
            5,
            13,
            pristine.len() / 2,
            pristine.len() - 5,
            pristine.len() - 1,
        ];
        for pos in positions {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0x01;
            fs::write(&newest, &bytes).unwrap();
            let s = DiskStableStore::open(&dir).unwrap();
            assert_eq!(
                s.latest_seq(),
                Some(1),
                "bit flip at byte {pos} must not be served"
            );
            assert_eq!(s.latest_shared().unwrap().decode::<u64>().unwrap(), 100);
            assert_eq!(s.stats().corrupt_records, 1, "flip at byte {pos} counted");
            assert!(!newest.exists(), "corrupt record removed (flip at {pos})");
            drop(s);
            // Restore the record (reload deleted it) for the next position.
            fs::write(&newest, &pristine).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fsync_failures_are_transient_and_survive_reopen() {
        // A flaky disk under the real durable store: `FaultyStable` fails
        // the first begin at epoch 2 and the first commit at epoch 3; the
        // retries succeed and a fresh process sees all three epochs.
        use crate::faulty::{DiskFault, DiskFaultPlan, DiskOp, FaultyStable};
        let dir = tmp_dir("fsync-fail");
        {
            let disk = DiskStableStore::open(&dir).unwrap();
            let plan = DiskFaultPlan {
                faults: vec![
                    DiskFault {
                        seq: 2,
                        op: DiskOp::Begin,
                        times: 1,
                    },
                    DiskFault {
                        seq: 3,
                        op: DiskOp::Commit,
                        times: 1,
                    },
                ],
            };
            let mut s = FaultyStable::new(disk, plan);
            s.begin_write(ckpt(1, 1)).unwrap();
            s.commit_write().unwrap();
            assert!(matches!(
                s.begin_write(ckpt(2, 2)),
                Err(StableWriteError::Io(_))
            ));
            assert!(!s.is_writing(), "failed begin leaves no in-flight write");
            s.begin_write(ckpt(2, 2)).expect("begin retry succeeds");
            s.commit_write().unwrap();
            s.begin_write(ckpt(3, 3)).unwrap();
            assert!(matches!(s.commit_write(), Err(StableWriteError::Io(_))));
            assert!(s.is_writing(), "failed commit keeps the in-flight write");
            s.commit_write().expect("commit retry succeeds");
            assert_eq!(s.injected_failures(), 2);
        }
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.latest_seq(), Some(3), "all epochs durable despite faults");
        assert_eq!(s.stats().torn_writes, 0, "masked faults tear nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_leaves_temp_file_for_reload_detection() {
        let dir = tmp_dir("crash");
        let mut s = DiskStableStore::open(&dir).unwrap();
        s.begin_write(ckpt(1, 1)).unwrap();
        s.crash();
        assert_eq!(s.stats().torn_writes, 1);
        assert!(!s.is_writing());
        assert!(dir.join(INFLIGHT).exists());
        drop(s);
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.stats().torn_writes, 1, "reload re-detects the torn file");
        assert_eq!(s.latest_seq(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_write_removes_temp_file() {
        let dir = tmp_dir("abort");
        let mut s = DiskStableStore::open(&dir).unwrap();
        s.begin_write(ckpt(1, 1)).unwrap();
        assert!(s.abort_write());
        assert!(!s.abort_write());
        assert!(!dir.join(INFLIGHT).exists());
        drop(s);
        let s = DiskStableStore::open(&dir).unwrap();
        assert_eq!(s.stats().torn_writes, 0, "aborted writes are not torn");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_deletes_oldest_files() {
        let dir = tmp_dir("retain");
        let mut s = DiskStableStore::open_with_retention(&dir, 2).unwrap();
        for seq in 1..=4 {
            s.begin_write(ckpt(seq, seq)).unwrap();
            s.commit_write().unwrap();
        }
        let bins: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.ends_with(".bin"))
            .collect();
        assert_eq!(bins.len(), 2, "only the retained files remain: {bins:?}");
        assert_eq!(s.latest_seq(), Some(4));
        assert_eq!(s.latest_at_or_before_shared(2), None, "evicted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overlapping_writes_rejected() {
        let dir = tmp_dir("overlap");
        let mut s = DiskStableStore::open(&dir).unwrap();
        s.begin_write(ckpt(1, 1)).unwrap();
        assert_eq!(
            s.begin_write(ckpt(2, 2)),
            Err(StableWriteError::WriteAlreadyInProgress)
        );
        assert_eq!(
            DiskStableStore::open(tmp_dir("overlap-b"))
                .unwrap()
                .commit_write(),
            Err(StableWriteError::NoWriteInProgress)
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
