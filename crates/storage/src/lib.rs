//! Volatile and stable checkpoint storage for `synergy-ft`.
//!
//! The MDCD protocol keeps (at most) one checkpoint per process in *volatile*
//! storage; the TB protocol persists checkpoints to *stable* storage that
//! survives a node crash. The adapted TB protocol additionally needs a stable
//! write that can be **aborted mid-flight and replaced** with different
//! contents when a `passed_AT` notification lands inside the blocking period
//! (paper §4.2, `write_disk(initial, expected_bit, alternative)`).
//!
//! Checkpoints are serialized with the workspace's compact little-endian
//! binary format (re-exported here as [`codec`]) and protected by a CRC-32
//! in every [`Checkpoint`] record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;

mod checkpoint;
mod crc;
mod disk;
mod faulty;
mod latency;
mod stable;
mod volatile;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use crc::crc32;
pub use disk::DiskStableStore;
pub use faulty::{DiskFault, DiskFaultPlan, DiskOp, FaultyStable};
pub use latency::DiskModel;
pub use stable::{Stable, StableStats, StableStore, StableWriteError};
pub use volatile::VolatileStore;
