//! Volatile (RAM) checkpoint storage.

use crate::checkpoint::Checkpoint;

/// One process's volatile checkpoint slot.
///
/// The MDCD protocol never rolls a process back further than its most recent
/// checkpoint, so volatile storage keeps exactly one record (paper §4.1,
/// footnote 1). The whole store is wiped by a node crash.
///
/// # Example
///
/// ```rust
/// use synergy_des::SimTime;
/// use synergy_storage::{Checkpoint, VolatileStore};
///
/// let mut ram = VolatileStore::new();
/// ram.save(Checkpoint::encode(1, SimTime::ZERO, "type1", &5u32)?);
/// assert_eq!(ram.latest().map(Checkpoint::seq), Some(1));
/// ram.wipe(); // hardware fault: RAM contents are lost
/// assert!(ram.latest().is_none());
/// # Ok::<(), synergy_storage::CheckpointError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct VolatileStore {
    latest: Option<Checkpoint>,
    saves: u64,
}

impl VolatileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        VolatileStore::default()
    }

    /// Saves a checkpoint, replacing any previous one.
    pub fn save(&mut self, checkpoint: Checkpoint) {
        self.latest = Some(checkpoint);
        self.saves += 1;
    }

    /// The most recent checkpoint, if one exists.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.latest.as_ref()
    }

    /// A shared handle to the most recent checkpoint (the adapted TB
    /// protocol copies it to stable storage). The checkpoint bytes live
    /// behind an `Arc`, so this is a refcount bump, not a deep copy.
    pub fn latest_shared(&self) -> Option<Checkpoint> {
        self.latest.clone()
    }

    /// Total saves performed (overhead accounting).
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// Simulates the loss of volatile contents on a hardware fault.
    pub fn wipe(&mut self) {
        self.latest = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_des::SimTime;

    fn ckpt(seq: u64) -> Checkpoint {
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "t", &seq).unwrap()
    }

    #[test]
    fn keeps_only_most_recent() {
        let mut v = VolatileStore::new();
        assert!(v.latest().is_none());
        v.save(ckpt(1));
        v.save(ckpt(2));
        assert_eq!(v.latest().unwrap().seq(), 2);
        assert_eq!(v.saves(), 2);
    }

    #[test]
    fn wipe_loses_everything_but_counts_survive() {
        let mut v = VolatileStore::new();
        v.save(ckpt(1));
        v.wipe();
        assert!(v.latest().is_none());
        assert_eq!(v.saves(), 1);
    }

    #[test]
    fn latest_shared_matches_latest() {
        let mut v = VolatileStore::new();
        v.save(ckpt(9));
        let shared = v.latest_shared().unwrap();
        assert_eq!(shared, *v.latest().unwrap());
        // Same underlying bytes, not a deep copy.
        assert!(std::sync::Arc::ptr_eq(
            &shared.shared_data(),
            &v.latest().unwrap().shared_data()
        ));
    }
}
