//! Deterministic reproductions of the paper's illustrative figures.
//!
//! Each function scripts the exact message pattern of one figure and returns
//! a structured report plus the full event trace; the `synergy-bench`
//! experiment binaries render these as per-process timelines, and the
//! integration tests assert the structural claims each figure makes.

use crate::config::{Scheme, SystemConfig};
use crate::system::{Mission, System};
use synergy_des::{SimDuration, Trace};

/// Checkpoint/AT counts extracted from a scenario trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Type-1 volatile checkpoints.
    pub type1: usize,
    /// Type-2 volatile checkpoints.
    pub type2: usize,
    /// `P1act` pseudo checkpoints.
    pub pseudo: usize,
    /// Successful acceptance tests.
    pub at_passes: usize,
}

impl TraceCounts {
    /// Extracts counts from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        TraceCounts {
            type1: trace.by_kind("ckpt.type-1").count(),
            type2: trace.by_kind("ckpt.type-2").count(),
            pseudo: trace.by_kind("ckpt.pseudo").count(),
            at_passes: trace.by_kind("at.pass").count(),
        }
    }
}

/// Report of a scripted MDCD trace scenario (Figures 1 and 3).
#[derive(Clone, Debug)]
pub struct MdcdTraceReport {
    /// Extracted counts.
    pub counts: TraceCounts,
    /// The full trace for rendering.
    pub trace: Trace,
}

/// The message pattern shared by Figures 1 and 3: two internal exchanges,
/// a validation at `P1act`, more internal traffic, then a validation at
/// `P2`.
fn figure_1_3_script(scheme: Scheme) -> MdcdTraceReport {
    let mut builder = SystemConfig::builder()
        .scheme(scheme)
        .seed(1)
        .duration_secs(12.0)
        .no_workload()
        .fixed_delay(SimDuration::from_millis(5))
        .perfect_clocks()
        // Keep TB timers out of the window so only MDCD activity shows.
        .tb_interval_secs(1_000.0);
    for (at, component, external) in [
        (1.0, 1, false), // m1: P1act -> P2 (P2 takes B_k, Type-1)
        (2.0, 2, false), // m2: P2 -> replicas (P1sdw takes A_j, Type-1)
        (3.0, 1, true),  // M2: AT at P1act passes; Type-2s under the original
        (4.0, 1, false), // m4: contaminates P2 again (B_k+2)
        (5.0, 2, false), // m5: contaminates P1sdw again
        (6.0, 2, true),  // M1: AT at P2 passes (B_k+3)
    ] {
        builder = builder.scripted_send(at, component, external);
    }
    let outcome = Mission::new(builder.build()).run();
    MdcdTraceReport {
        counts: TraceCounts::from_trace(&outcome.trace),
        trace: outcome.trace,
    }
}

/// Figure 1: message-driven confidence-driven checkpoint establishment under
/// the **original** MDCD protocol.
pub fn fig1_original_mdcd() -> MdcdTraceReport {
    figure_1_3_script(Scheme::MdcdOnly)
}

/// Figure 3: the **modified** MDCD protocol on the same message pattern —
/// pseudo checkpoints appear, Type-2 checkpoints are eliminated.
pub fn fig3_modified_mdcd() -> MdcdTraceReport {
    figure_1_3_script(Scheme::Coordinated)
}

/// Report of the Figure 2 analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fig2Report {
    /// Without blocking, `m1` (sent after the sender's checkpoint, read
    /// before the receiver's) violates consistency.
    pub consistency_violated_without_blocking: bool,
    /// Without unacked-message logging, in-transit `m2` violates
    /// recoverability.
    pub recoverability_violated_without_log: bool,
    /// Post-checkpoint blocking removes the consistency violation.
    pub blocking_restores_consistency: bool,
    /// Saving unacknowledged messages makes `m2` restorable.
    pub logging_restores_recoverability: bool,
}

/// Figure 2: why time-based checkpointing needs a blocking period (for
/// consistency) and unacknowledged-message logging (for recoverability).
///
/// The scenario is evaluated analytically on the exact timings of the
/// figure: process `Pa` checkpoints at its timer `Ta`, process `Pb` at
/// `Tb = Ta + skew` (clock deviation), with message delays inside
/// `[tmin, tmax]`.
pub fn fig2_tb_hazards() -> Fig2Report {
    // Timings (seconds): the figure's qualitative schedule made concrete.
    let ta = 10.000; // Pa's checkpoint
    let skew = 0.004; // Pb's timer fires 4ms later
    let tb = ta + skew;
    let delay = 0.002; // message delivery delay
    let tmin = 0.002;

    // m1: Pa sends right after its checkpoint; Pb reads it before its own.
    let m1_sent = ta + 0.001;
    let m1_read = m1_sent + delay; // 10.003 < tb
    let m1_in_pa_ckpt = m1_sent < ta; // false: sent after the checkpoint
    let m1_in_pb_ckpt = m1_read < tb; // true: read before the checkpoint
    let consistency_violated = m1_in_pb_ckpt && !m1_in_pa_ckpt;

    // With blocking, Pa may not send before every other timer has expired:
    // the earliest send is ta + blocking, arriving after tb.
    let blocking: f64 = skew + 2.0 * 0.0 /* drift */ - tmin + tmin; // δ' ≥ skew
    let m1_blocked_sent = ta + blocking.max(skew);
    let m1_blocked_read = m1_blocked_sent + delay;
    let blocking_restores = m1_blocked_read >= tb;

    // m2: Pb sends before its checkpoint; Pa reads it after its own
    // checkpoint completed — an in-transit message on the recovery line.
    let m2_sent = tb - 0.001;
    let m2_read = m2_sent + delay; // after ta
    let m2_in_pb_ckpt = m2_sent < tb; // true
    let m2_in_pa_ckpt = m2_read < ta; // false
    let recoverability_violated = m2_in_pb_ckpt && !m2_in_pa_ckpt;

    // The Neves-Fuchs fix: m2 is unacknowledged when Pb's checkpoint is
    // taken (the ack cannot return before tb), so it is saved and re-sent.
    let ack_back = m2_read + delay;
    let logged = ack_back > tb;

    Fig2Report {
        consistency_violated_without_blocking: consistency_violated,
        recoverability_violated_without_log: recoverability_violated,
        blocking_restores_consistency: blocking_restores,
        logging_restores_recoverability: logged,
    }
}

/// Report of the Figure 4 comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fig4Report {
    /// Runs of the naive combination that violated a validity property.
    pub naive_violations: usize,
    /// Runs of the coordinated scheme that violated any property.
    pub coordinated_violations: usize,
    /// Total runs per scheme.
    pub runs: usize,
}

/// Figure 4: simply combining the original MDCD and TB protocols loses
/// non-contaminated states, while the coordinated scheme never does.
///
/// Both schemes face identical workloads and a hardware fault; the naive
/// combination checkpoints whatever state its timer finds (often
/// contaminated), so a fraction of runs violate validity, whereas the
/// coordinated scheme must come through every run clean.
pub fn fig4_naive_vs_coordinated(runs: usize) -> Fig4Report {
    let mut report = Fig4Report {
        runs,
        ..Fig4Report::default()
    };
    for seed in 0..runs as u64 {
        let run = |scheme: Scheme| {
            Mission::new(
                SystemConfig::builder()
                    .scheme(scheme)
                    .seed(seed)
                    .duration_secs(120.0)
                    .internal_rate_per_min(60.0)
                    .external_rate_per_min(2.0)
                    .tb_interval_secs(10.0)
                    .hardware_fault_at_secs(75.0)
                    .trace(false)
                    .build(),
            )
            .run()
        };
        if !run(Scheme::Naive).verdicts.all_hold() {
            report.naive_violations += 1;
        }
        if !run(Scheme::Coordinated).verdicts.all_hold() {
            report.coordinated_violations += 1;
        }
    }
    report
}

/// Report of the Figure 6 coordinated-checkpointing cases.
#[derive(Clone, Debug)]
pub struct Fig6Report {
    /// (a) A clean `P2` saves its current state.
    pub p2_clean_saves_current: bool,
    /// (b) A dirty `P2` begins with its volatile copy and **replaces** it
    /// with the current state when a `passed_AT` lands inside the blocking
    /// period.
    pub p2_dirty_replaces_on_passed_at: bool,
    /// (c) A pseudo-clean `P1act` saves its current state.
    pub act_clean_saves_current: bool,
    /// (d) A pseudo-dirty `P1act` copies its pseudo checkpoint.
    pub act_dirty_copies_volatile: bool,
    /// Traces of the sub-scenarios, for rendering.
    pub traces: Vec<(&'static str, Trace)>,
}

/// Figure 6: how the adapted TB protocol chooses (and adjusts) stable
/// checkpoint contents in coordination with the MDCD dirty bits.
pub fn fig6_cases() -> Fig6Report {
    let base = || {
        SystemConfig::builder()
            .scheme(Scheme::Coordinated)
            .seed(3)
            .duration_secs(11.0)
            .no_workload()
            .fixed_delay(SimDuration::from_millis(2))
            .tb_interval_secs(10.0)
    };
    let has = |trace: &Trace, actor: &str, kind: &str, needle: &str| {
        trace
            .by_actor(actor)
            .any(|e| e.kind.starts_with(kind) && e.detail.contains(needle))
    };

    // Cases (a) + (c): nobody sends anything; every process is clean at the
    // 10s timer and saves its current state.
    let quiet = Mission::new(base().build()).run();
    let p2_clean = has(&quiet.trace, "P2", "tb.write", "stable-current");
    let act_clean = has(&quiet.trace, "P1act", "tb.write", "stable-current");

    // Case (d): one internal message at 9.5s sets P1act's pseudo bit and
    // contaminates P2, so both copy their volatile checkpoints at the timer.
    let dirty = Mission::new(base().scripted_send(9.5, 1, false).build()).run();
    let act_dirty = has(&dirty.trace, "P1act", "tb.write", "stable-volatile-copy");

    // Case (b): P2 is dirty when its timer fires, but P1act passes an AT
    // right before the timer; the passed_AT notification lands inside P2's
    // blocking period and flips the in-flight write to the current state.
    let replace = Mission::new(
        base()
            .scripted_send(9.0, 1, false) // contaminate P2
            .scripted_send(9.9995, 1, true) // AT at P1act; broadcast in flight
            .build(),
    )
    .run();
    let p2_replaced = has(&replace.trace, "P2", "tb.replace", "current state");

    Fig6Report {
        p2_clean_saves_current: p2_clean,
        p2_dirty_replaces_on_passed_at: p2_replaced,
        act_clean_saves_current: act_clean,
        act_dirty_copies_volatile: act_dirty,
        traces: vec![
            ("(a)/(c) all clean", quiet.trace),
            ("(d) dirty copies volatile", dirty.trace),
            ("(b) passed_AT during blocking", replace.trace),
        ],
    }
}

/// Builds the scripted system used by the Figure 1/3 scenarios without
/// running it (integration tests drive it step by step).
pub fn fig1_system() -> System {
    System::new(
        SystemConfig::builder()
            .scheme(Scheme::MdcdOnly)
            .seed(1)
            .duration_secs(12.0)
            .no_workload()
            .fixed_delay(SimDuration::from_millis(5))
            .perfect_clocks()
            .scripted_send(1.0, 1, false)
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_type2_and_no_pseudo() {
        let report = fig1_original_mdcd();
        assert!(report.counts.type1 >= 3, "{:?}", report.counts);
        assert!(report.counts.type2 >= 3, "{:?}", report.counts);
        assert_eq!(report.counts.pseudo, 0, "{:?}", report.counts);
        assert_eq!(report.counts.at_passes, 2);
    }

    #[test]
    fn fig3_has_pseudo_and_no_type2() {
        let report = fig3_modified_mdcd();
        assert!(report.counts.pseudo >= 2, "{:?}", report.counts);
        assert_eq!(report.counts.type2, 0, "{:?}", report.counts);
        assert!(report.counts.type1 >= 3, "{:?}", report.counts);
        assert_eq!(report.counts.at_passes, 2);
    }

    #[test]
    fn fig1_fig3_share_type1_structure() {
        // The modification changes checkpoint *kinds*, not the
        // contamination structure.
        let original = fig1_original_mdcd();
        let modified = fig3_modified_mdcd();
        assert_eq!(original.counts.type1, modified.counts.type1);
    }

    #[test]
    fn fig2_hazards_and_fixes() {
        let r = fig2_tb_hazards();
        assert!(r.consistency_violated_without_blocking);
        assert!(r.recoverability_violated_without_log);
        assert!(r.blocking_restores_consistency);
        assert!(r.logging_restores_recoverability);
    }

    #[test]
    fn fig6_all_four_cases_hold() {
        let r = fig6_cases();
        assert!(r.p2_clean_saves_current, "case (a)");
        assert!(r.p2_dirty_replaces_on_passed_at, "case (b)");
        assert!(r.act_clean_saves_current, "case (c)");
        assert!(r.act_dirty_copies_volatile, "case (d)");
    }

    #[test]
    fn fig4_naive_violates_coordinated_does_not() {
        let r = fig4_naive_vs_coordinated(6);
        assert!(r.naive_violations > 0, "{r:?}");
        assert_eq!(r.coordinated_violations, 0, "{r:?}");
    }
}
