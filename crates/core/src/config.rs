//! System configuration and scheme selection.

use synergy_clocks::SyncParams;
use synergy_des::{SimDuration, SimTime};
use synergy_mdcd::MdcdConfig;
use synergy_net::MissionId;
use synergy_storage::DiskModel;
use synergy_tb::TbVariant;

use crate::faults::{FaultPlan, HardwareFault, SoftwareFault};
use crate::regime::{
    AtCoveragePlan, BadMessagePlan, ByzantinePlan, RegimePlan, ResyncViolationPlan,
};

/// How the software and hardware fault-tolerance protocols are combined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The paper's contribution: modified MDCD + adapted TB, coordinated
    /// through dirty bits and `Ndc` matching (§3–§4).
    Coordinated,
    /// The write-through baseline of §3: original MDCD whose Type-2
    /// checkpoints are written through to stable storage on every
    /// validation; no TB timers.
    WriteThrough,
    /// The invalid simple combination of §4.1: original MDCD and original
    /// TB running concurrently with no coordination.
    Naive,
    /// Original MDCD alone (software fault tolerance only; hardware faults
    /// lose all progress).
    MdcdOnly,
}

impl Scheme {
    /// The protocol choices this scheme makes.
    pub fn policy(self) -> &'static dyn crate::system::SchemePolicy {
        crate::system::policy_for(self)
    }

    /// The MDCD configuration this scheme runs.
    pub fn mdcd_config(self) -> MdcdConfig {
        self.policy().mdcd_config()
    }

    /// The TB variant this scheme runs, if any.
    pub fn tb_variant(self) -> Option<TbVariant> {
        self.policy().tb_variant()
    }

    /// Whether Type-2 checkpoints are written through to stable storage.
    pub fn stable_on_validation(self) -> bool {
        self.policy().stable_on_validation()
    }
}

/// Full configuration of one simulated mission.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Protocol combination under test.
    pub scheme: Scheme,
    /// Master seed for all random streams.
    pub seed: u64,
    /// The mission (tenant) identity this run carries. Purely a tag: it
    /// never feeds a random stream, so two runs differing only in mission
    /// id produce byte-identical protocol behaviour. Fleet deployments
    /// assign distinct ids; standalone runs keep [`MissionId::SOLO`].
    pub mission: MissionId,
    /// Mission length.
    pub duration: SimDuration,
    /// Minimum network delay (`tmin`).
    pub tmin: SimDuration,
    /// Maximum network delay (`tmax`).
    pub tmax: SimDuration,
    /// Clock synchronization quality (`δ`, `ρ`).
    pub sync: SyncParams,
    /// TB checkpoint interval (`Δ`).
    pub tb_interval: SimDuration,
    /// Internal application-message rate per component (Hz).
    pub internal_rate_hz: f64,
    /// External (device-bound, acceptance-tested) message rate per
    /// component (Hz).
    pub external_rate_hz: f64,
    /// Scheduled faults.
    pub faults: FaultPlan,
    /// Delay between a hardware fault and system-wide recovery.
    pub restart_delay: SimDuration,
    /// Stable-storage write cost model.
    pub disk: DiskModel,
    /// Whether to record a full event trace (disable for long sweeps).
    pub trace: bool,
    /// When set, account every stable commit through the incremental
    /// checkpoint chain (full image every `k` commits, dirty-region deltas
    /// between) and record the byte costs in
    /// [`RunMetrics::stable_bytes_full`](crate::RunMetrics) /
    /// [`stable_bytes_delta`](crate::RunMetrics::stable_bytes_delta).
    /// Accounting only — protocol behaviour, schedules and device streams
    /// are byte-identical with it on or off.
    pub checkpoint_delta_k: Option<u32>,
    /// Additional scripted application sends (used by the figure
    /// scenarios); they fire once at the given instants, on top of (or, with
    /// zero rates, instead of) the Poisson workload.
    pub scripted_sends: Vec<ScriptedSend>,
    /// Unmasked-regime injection plan (bad messages, AT false negatives,
    /// resync violations, Byzantine-lite corruption). Defaults to
    /// [`RegimePlan::none`]; a masked run is byte-identical with the field
    /// present or absent.
    pub regime: RegimePlan,
}

/// One scripted application send.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScriptedSend {
    /// When the application produces the message.
    pub at: SimTime,
    /// Which component produces it (1 drives both replicas, 2 drives `P2`).
    pub component: u8,
    /// Whether the message is external (acceptance-tested).
    pub external: bool,
}

impl SystemConfig {
    /// Starts building a configuration from defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Validates the full injection surface — the fault plan and the
    /// regime plan — returning the first structured error. `System::new`
    /// calls this and panics on failure (a hand-built config is a
    /// programming error); chaos and cluster callers validate ahead of
    /// time and surface the typed error instead.
    ///
    /// # Errors
    ///
    /// The first [`FaultPlanError`](crate::FaultPlanError) in the fault
    /// plan, then the regime plan.
    pub fn validate(&self) -> Result<(), crate::FaultPlanError> {
        self.faults.validate()?;
        self.regime.validate()
    }

    /// The oracle twin of this configuration: identical in every respect
    /// except that the regime plan is cleared. Diffing a regime run's device
    /// stream against its oracle's counts and localizes escapes.
    pub fn oracle(&self) -> SystemConfig {
        let mut cfg = self.clone();
        cfg.regime = RegimePlan::none();
        cfg
    }
}

/// Builder for [`SystemConfig`]; all setters are optional.
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            cfg: SystemConfig {
                scheme: Scheme::Coordinated,
                seed: 0,
                mission: MissionId::SOLO,
                duration: SimDuration::from_secs(300),
                tmin: SimDuration::from_micros(200),
                tmax: SimDuration::from_millis(2),
                sync: SyncParams::new(SimDuration::from_micros(500), 1e-4),
                tb_interval: SimDuration::from_secs(10),
                internal_rate_hz: 1.0,
                external_rate_hz: 1.0 / 60.0,
                faults: FaultPlan::default(),
                restart_delay: SimDuration::from_millis(500),
                disk: DiskModel::commodity(),
                trace: true,
                checkpoint_delta_k: None,
                scripted_sends: Vec::new(),
                regime: RegimePlan::none(),
            },
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the protocol scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Tags the run with a mission (tenant) identity.
    pub fn mission(mut self, mission: MissionId) -> Self {
        self.cfg.mission = mission;
        self
    }

    /// Sets the mission length in seconds.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.cfg.duration = SimDuration::from_secs_f64(secs);
        self
    }

    /// Sets the network delay bounds.
    pub fn delays(mut self, tmin: SimDuration, tmax: SimDuration) -> Self {
        assert!(tmin <= tmax, "tmin must not exceed tmax");
        self.cfg.tmin = tmin;
        self.cfg.tmax = tmax;
        self
    }

    /// Sets clock synchronization quality.
    pub fn sync(mut self, sync: SyncParams) -> Self {
        self.cfg.sync = sync;
        self
    }

    /// Sets the TB checkpoint interval in seconds.
    pub fn tb_interval_secs(mut self, secs: f64) -> Self {
        self.cfg.tb_interval = SimDuration::from_secs_f64(secs);
        self
    }

    /// Sets the per-component internal message rate, in messages/minute.
    pub fn internal_rate_per_min(mut self, per_min: f64) -> Self {
        self.cfg.internal_rate_hz = per_min / 60.0;
        self
    }

    /// Sets the per-component external message rate, in messages/minute.
    pub fn external_rate_per_min(mut self, per_min: f64) -> Self {
        self.cfg.external_rate_hz = per_min / 60.0;
        self
    }

    /// Schedules a hardware fault on `P2`'s node
    /// ([`NodeId::P2`](crate::NodeId)) at `secs`.
    pub fn hardware_fault_at_secs(self, secs: f64) -> Self {
        self.hardware_fault(HardwareFault::on(
            crate::NodeId::P2,
            SimTime::from_secs_f64(secs),
        ))
    }

    /// Schedules a hardware fault on an arbitrary node.
    pub fn hardware_fault(mut self, fault: HardwareFault) -> Self {
        self.cfg.faults.hardware.push(fault);
        self
    }

    /// Activates the active version's design fault at `secs` (the next
    /// acceptance test after this instant fails).
    pub fn software_fault_at_secs(mut self, secs: f64) -> Self {
        self.cfg.faults.software = Some(SoftwareFault {
            at: SimTime::from_secs_f64(secs),
        });
        self
    }

    /// Sets the fault-to-recovery delay.
    pub fn restart_delay(mut self, delay: SimDuration) -> Self {
        self.cfg.restart_delay = delay;
        self
    }

    /// Enables or disables trace recording.
    pub fn trace(mut self, on: bool) -> Self {
        self.cfg.trace = on;
        self
    }

    /// Enables incremental-checkpoint byte accounting with a full image
    /// every `k` stable commits (`k = 1` measures the full-image scheme).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn checkpoint_delta_k(mut self, k: u32) -> Self {
        assert!(k >= 1, "full-image cadence k must be at least 1");
        self.cfg.checkpoint_delta_k = Some(k);
        self
    }

    /// Disables the Poisson workload entirely (scripted scenarios drive all
    /// traffic through [`scripted_send`](Self::scripted_send)).
    pub fn no_workload(mut self) -> Self {
        self.cfg.internal_rate_hz = 0.0;
        self.cfg.external_rate_hz = 0.0;
        self
    }

    /// Adds one scripted application send.
    pub fn scripted_send(mut self, at_secs: f64, component: u8, external: bool) -> Self {
        assert!(component == 1 || component == 2, "component must be 1 or 2");
        self.cfg.scripted_sends.push(ScriptedSend {
            at: SimTime::from_secs_f64(at_secs),
            component,
            external,
        });
        self
    }

    /// Uses a fixed network delay for every link (deterministic scenarios).
    pub fn fixed_delay(mut self, delay: SimDuration) -> Self {
        self.cfg.tmin = delay;
        self.cfg.tmax = delay;
        self
    }

    /// Uses perfectly synchronized, drift-free clocks.
    pub fn perfect_clocks(mut self) -> Self {
        self.cfg.sync = SyncParams::new(SimDuration::ZERO, 0.0);
        self
    }

    /// Installs a complete unmasked-regime plan (used by the chaos
    /// generator, which assembles plans axis by axis).
    pub fn regime(mut self, plan: RegimePlan) -> Self {
        self.cfg.regime = plan;
        self
    }

    /// Regime axis 1: after `after_secs`, the active process corrupts each
    /// external payload with probability `rate`; the acceptance test catches
    /// every corruption unless [`at_coverage`](Self::at_coverage) lowers it.
    pub fn bad_messages(mut self, after_secs: f64, rate: f64) -> Self {
        self.cfg.regime.bad_messages = Some(BadMessagePlan {
            after: SimTime::from_secs_f64(after_secs),
            rate,
        });
        self
    }

    /// Regime axis 2: seeded AT coverage knob — a corrupt payload escapes to
    /// the device with probability `1 - coverage`.
    pub fn at_coverage(mut self, coverage: f64) -> Self {
        self.cfg.regime.at_coverage = Some(AtCoveragePlan { coverage });
        self
    }

    /// Regime axis 3: after `after_secs`, resynchronizations leave `node`'s
    /// clock `excess` beyond the δ envelope.
    pub fn resync_violation(mut self, after_secs: f64, excess: SimDuration, node: usize) -> Self {
        self.cfg.regime.resync_violation = Some(ResyncViolationPlan {
            after: SimTime::from_secs_f64(after_secs),
            excess,
            node,
        });
        self
    }

    /// Regime axis 4: at `at_secs`, flip value bytes in `node`'s latest
    /// stable checkpoint behind a valid CRC.
    pub fn byzantine_flip(mut self, at_secs: f64, node: usize) -> Self {
        self.cfg.regime.byzantine = Some(ByzantinePlan {
            at: SimTime::from_secs_f64(at_secs),
            node,
        });
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SystemConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_mdcd::Variant;

    #[test]
    fn scheme_protocol_mapping() {
        assert_eq!(Scheme::Coordinated.mdcd_config().variant, Variant::Modified);
        assert_eq!(Scheme::Coordinated.tb_variant(), Some(TbVariant::Adapted));
        assert_eq!(Scheme::Naive.tb_variant(), Some(TbVariant::Original));
        assert_eq!(Scheme::WriteThrough.tb_variant(), None);
        assert!(Scheme::WriteThrough.stable_on_validation());
        assert!(Scheme::WriteThrough.mdcd_config().active_type2);
        assert!(!Scheme::Coordinated.stable_on_validation());
    }

    #[test]
    fn builder_defaults_are_sane() {
        let cfg = SystemConfig::builder().build();
        assert_eq!(cfg.scheme, Scheme::Coordinated);
        assert!(cfg.tmin <= cfg.tmax);
        assert!(cfg.tb_interval > SimDuration::ZERO);
        assert!(cfg.faults.hardware.is_empty());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = SystemConfig::builder()
            .scheme(Scheme::Naive)
            .seed(7)
            .duration_secs(60.0)
            .internal_rate_per_min(120.0)
            .external_rate_per_min(3.0)
            .hardware_fault_at_secs(30.0)
            .software_fault_at_secs(20.0)
            .build();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.internal_rate_hz, 2.0);
        assert_eq!(cfg.external_rate_hz, 0.05);
        assert_eq!(cfg.faults.hardware.len(), 1);
        assert!(cfg.faults.software.is_some());
    }

    #[test]
    fn validate_covers_fault_and_regime_plans() {
        let ok = SystemConfig::builder().bad_messages(10.0, 0.5).build();
        assert_eq!(ok.validate(), Ok(()));
        let bad_rate = SystemConfig::builder().bad_messages(10.0, 1.5).build();
        assert!(bad_rate.validate().is_err());
        let bad_node = SystemConfig::builder().byzantine_flip(10.0, 9).build();
        assert!(matches!(
            bad_node.validate(),
            Err(crate::FaultPlanError::NodeOutOfRange { node: 9 })
        ));
        let bad_fault = SystemConfig::builder()
            .hardware_fault(HardwareFault {
                at: SimTime::from_secs_f64(5.0),
                node: 7,
            })
            .build();
        assert!(matches!(
            bad_fault.validate(),
            Err(crate::FaultPlanError::NodeOutOfRange { node: 7 })
        ));
    }

    #[test]
    #[should_panic(expected = "tmin must not exceed tmax")]
    fn inverted_delays_rejected() {
        SystemConfig::builder().delays(SimDuration::from_millis(5), SimDuration::from_millis(1));
    }
}
