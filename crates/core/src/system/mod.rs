//! The simulated three-node guarded system, in three layers.
//!
//! - [`host`]: one guarded process — MDCD engine, optional TB engine,
//!   application, stores — behind a sans-io `handle(event) -> actions`
//!   surface ([`ProcessHost`]).
//! - [`dispatch`](self): the discrete-event loop, reduced to routing fired
//!   events to hosts and applying the environment side of their actions.
//! - [`recovery`]: epoch-line selection, volatile rollback, and the
//!   unacked/receive-log replay machinery for both recovery procedures.
//!
//! Scheme differences (which MDCD configuration, which TB variant,
//! write-through or not) are concentrated in [`policy::SchemePolicy`];
//! nothing in the host, dispatch or recovery layers matches on
//! [`Scheme`](crate::config::Scheme) directly.
//!
//! Topology (paper §2.1): node 0 runs `P1act`, node 1 runs `P1sdw`, node 2
//! runs `P2`; one device endpoint models the external world. Hosts are
//! addressed by [`ProcessId`] through precomputed index maps, never by
//! position.

mod dispatch;
pub mod host;
pub mod policy;
pub mod recovery;

use std::collections::HashMap;

use synergy_clocks::ClockFleet;
use synergy_des::{ActorId, DetRng, SimTime, Simulator, Trace};
use synergy_mdcd::ProcessRole;
use synergy_net::{DelayModel, DeviceId, Envelope, MsgSeqNo, ProcessId, SimNetwork};
use synergy_tb::TbConfig;

use crate::app::CounterApp;
use crate::checkers::Verdicts;
use crate::config::SystemConfig;
use crate::metrics::RunMetrics;
use crate::workload::ArrivalStream;

use dispatch::Ev;
pub use host::{HostAction, HostEvent, ProcessHost, Topology};
pub use policy::{policy_for, SchemePolicy};

/// `P1act`'s process id.
pub const P1ACT: ProcessId = ProcessId(1);
/// `P1sdw`'s process id.
pub const P1SDW: ProcessId = ProcessId(2);
/// `P2`'s process id.
pub const P2: ProcessId = ProcessId(3);
/// The external device.
pub const DEVICE: DeviceId = DeviceId(0);

/// The paper's name for a process id in the canonical layout (`P1act`,
/// `P1sdw`, `P2`), or `"?"` for ids outside it.
pub fn process_name(pid: ProcessId) -> &'static str {
    match pid {
        P1ACT => "P1act",
        P1SDW => "P1sdw",
        P2 => "P2",
        _ => "?",
    }
}

/// The running simulation. For scripted scenarios use the fine-grained
/// accessors; for statistical runs prefer [`Mission`].
pub struct System {
    cfg: SystemConfig,
    sim: Simulator<Ev>,
    net: SimNetwork,
    clocks: ClockFleet,
    topology: Topology,
    hosts: Vec<ProcessHost>,
    host_actors: Vec<ActorId>,
    actor_index: HashMap<ActorId, usize>,
    pid_index: HashMap<ProcessId, usize>,
    node_index: HashMap<usize, usize>,
    device_actor: ActorId,
    system_actor: ActorId,
    device_log: Vec<(SimTime, Envelope)>,
    arrivals: Vec<(u8, bool, ArrivalStream)>,
    metrics: RunMetrics,
    verdicts: Verdicts,
    global_validated: MsgSeqNo,
    net_inc: u64,
    resync_pending: bool,
    software_recovered: bool,
    crash_pending: Vec<usize>,
    finished: bool,
    /// When the unmasked-regime bad-message axis armed (for detection
    /// latency).
    regime_armed_at: Option<SimTime>,
    /// Whether the most recent resynchronization left the fleet outside the
    /// δ bound — any epoch line computed while this holds is stale.
    sync_violated: bool,
    /// Per-host incremental-checkpoint codecs, present when
    /// [`SystemConfig::checkpoint_delta_k`] is set. Accounting only: they
    /// measure what each stable commit would cost through the chain format,
    /// without touching the stores or the schedule.
    ckpt_codecs: Option<Vec<synergy_archive::CheckpointCodec>>,
}

impl System {
    /// Builds a system from `cfg` (faults validated, workload scheduled).
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid mission config");
        // Pending-event count is bounded by in-flight messages + per-host
        // timers + workload streams — tens, not thousands; 64 skips the
        // heap's early regrowth without committing real memory.
        let mut sim: Simulator<Ev> = Simulator::with_capacity(cfg.seed, 64);
        if !cfg.trace {
            sim.trace().disable();
        }
        let a_act = sim.register_actor("P1act");
        let a_sdw = sim.register_actor("P1sdw");
        let a_p2 = sim.register_actor("P2");
        let device_actor = sim.register_actor("device");
        let system_actor = sim.register_actor("system");

        let root = DetRng::new(cfg.seed);
        let net = SimNetwork::new(
            DelayModel::uniform(cfg.tmin, cfg.tmax),
            root.stream("network"),
        );
        let clocks = ClockFleet::generate(3, cfg.sync, &root);

        let topology = Topology::canonical();
        let tb_cfg = cfg
            .scheme
            .tb_variant()
            .map(|variant| TbConfig::new(variant, cfg.tb_interval, cfg.sync, cfg.tmin, cfg.tmax));
        // All three applications share one salt: the replicas must produce
        // identical streams, and the restart-from-scratch path reconstructs
        // the same initial state.
        let mk_host = |role: ProcessRole, pid: ProcessId, node: usize| {
            ProcessHost::new(
                role,
                pid,
                node,
                topology,
                cfg.scheme,
                CounterApp::new(cfg.seed ^ 0xA5A5),
                tb_cfg,
            )
        };
        let mut hosts = vec![
            mk_host(ProcessRole::Active, topology.active, 0),
            mk_host(ProcessRole::Shadow, topology.shadow, 1),
            mk_host(ProcessRole::Peer, topology.peer, 2),
        ];
        for h in &mut hosts {
            h.set_tracing(cfg.trace);
            h.set_mission(cfg.mission);
        }
        // The bad-message/AT-coverage axes live on the *original* active
        // host only: the upgraded low-confidence version is the one that can
        // emit bad payloads; the shadow that may replace it is clean.
        if let Some(bad) = cfg.regime.bad_messages {
            let coverage = cfg.regime.at_coverage.map_or(1.0, |c| c.coverage);
            hosts[0].set_regime(crate::regime::RegimeInjector::new(
                bad.rate,
                coverage,
                root.stream("regime"),
            ));
        }
        let host_actors = vec![a_act, a_sdw, a_p2];
        let actor_index = host_actors
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, i))
            .collect();
        let pid_index = hosts.iter().enumerate().map(|(i, h)| (h.pid, i)).collect();
        let node_index = hosts.iter().enumerate().map(|(i, h)| (h.node, i)).collect();

        let mut sys = System {
            sim,
            net,
            clocks,
            topology,
            hosts,
            host_actors,
            actor_index,
            pid_index,
            node_index,
            device_actor,
            system_actor,
            device_log: Vec::new(),
            arrivals: Vec::new(),
            metrics: RunMetrics::new(),
            verdicts: Verdicts::default(),
            global_validated: MsgSeqNo(0),
            net_inc: 0,
            resync_pending: false,
            software_recovered: false,
            crash_pending: Vec::new(),
            finished: false,
            regime_armed_at: None,
            sync_violated: false,
            ckpt_codecs: cfg
                .checkpoint_delta_k
                .map(|k| vec![synergy_archive::CheckpointCodec::new(k); 3]),
            cfg,
        };
        sys.bootstrap(root);
        sys
    }

    fn bootstrap(&mut self, root: DetRng) {
        // Workload streams: component 1 drives both replicas, component 2
        // drives P2; internal and external arrivals are independent streams.
        for (component, external) in [(1u8, false), (1, true), (2, false), (2, true)] {
            let rate = if external {
                self.cfg.external_rate_hz
            } else {
                self.cfg.internal_rate_hz
            };
            if rate <= 0.0 {
                continue;
            }
            let label = format!("workload:c{component}:ext{external}");
            let mut stream = ArrivalStream::new(rate, root.stream(&label));
            let first = stream.next_interarrival();
            self.arrivals.push((component, external, stream));
            self.sim.schedule_in(
                first,
                self.system_actor,
                Ev::Tick {
                    component,
                    external,
                    scripted: false,
                },
            );
        }
        // TB timers.
        for i in 0..self.hosts.len() {
            let now = self.sim.now();
            let actions = self.hosts[i].start_tb(now);
            self.apply_host_actions(i, actions, now);
        }
        // Scripted sends (one-shot: no arrival stream exists for them, so
        // on_tick does not reschedule).
        for s in self.cfg.scripted_sends.clone() {
            self.sim.schedule_at(
                s.at,
                self.system_actor,
                Ev::Tick {
                    component: s.component,
                    external: s.external,
                    scripted: true,
                },
            );
        }
        // Faults.
        if let Some(sw) = self.cfg.faults.software {
            self.sim
                .schedule_at(sw.at, self.system_actor, Ev::SoftwareFaultActivate);
        }
        for hw in self.cfg.faults.hardware.clone() {
            self.sim.schedule_at(
                hw.at,
                self.system_actor,
                Ev::HardwareCrash { node: hw.node },
            );
        }
        // Unmasked-regime injections.
        if let Some(bad) = self.cfg.regime.bad_messages {
            self.sim
                .schedule_at(bad.after, self.system_actor, Ev::RegimeArm);
        }
        if let Some(byz) = self.cfg.regime.byzantine {
            self.sim.schedule_at(
                byz.at,
                self.system_actor,
                Ev::ByzantineCorrupt { node: byz.node },
            );
        }
        if let Some(rv) = self.cfg.regime.resync_violation {
            // Force a resynchronization attempt at the violation instant —
            // the demand-driven TB resync may never fire in a short mission,
            // and the regime models this *particular* resync going wrong.
            self.sim
                .schedule_at(rv.after, self.system_actor, Ev::Resync);
        }
        let end = SimTime::ZERO + self.cfg.duration;
        self.sim.schedule_at(end, self.system_actor, Ev::End);
    }

    // ------------------------------------------------------------------
    // Index maps (no positional scans)
    // ------------------------------------------------------------------

    fn host_index(&self, actor: ActorId) -> Option<usize> {
        self.actor_index.get(&actor).copied()
    }

    fn index_of_pid(&self, pid: ProcessId) -> Option<usize> {
        self.pid_index.get(&pid).copied()
    }

    fn index_of_node(&self, node: usize) -> Option<usize> {
        self.node_index.get(&node).copied()
    }

    /// The scheme policy this run executes.
    fn policy(&self) -> &'static dyn SchemePolicy {
        policy_for(self.cfg.scheme)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Checker verdicts collected so far.
    pub fn verdicts(&self) -> &Verdicts {
        &self.verdicts
    }

    /// The run trace.
    pub fn trace(&self) -> &Trace {
        self.sim.trace_ref()
    }

    /// External messages received by the device, in arrival order.
    pub fn device_log(&self) -> &[(SimTime, Envelope)] {
        &self.device_log
    }

    /// Payload bytes of every external message the device received, in
    /// arrival order (the stream the oracle diff operates on).
    pub fn device_stream(&self) -> Vec<Vec<u8>> {
        device_stream_of(&self.device_log)
    }

    /// The ground-truth highest validated sequence number.
    pub fn global_validated(&self) -> MsgSeqNo {
        self.global_validated
    }

    /// Dirty bits `(P1act pseudo, P1sdw, P2)` right now.
    pub fn dirty_bits(&self) -> (bool, bool, bool) {
        let bit = |pid, pseudo: bool| {
            self.index_of_pid(pid).is_some_and(|i| {
                if pseudo {
                    self.hosts[i].engine.checkpoint_bit()
                } else {
                    self.hosts[i].engine.dirty_bit()
                }
            })
        };
        (
            bit(self.topology.active, true),
            bit(self.topology.shadow, false),
            bit(self.topology.peer, false),
        )
    }

    /// Whether the shadow has taken over.
    pub fn shadow_promoted(&self) -> bool {
        self.index_of_pid(self.topology.shadow)
            .is_some_and(|i| self.hosts[i].engine.role() == ProcessRole::Active)
    }

    /// Application state of host `i` (0 = act, 1 = sdw, 2 = P2).
    pub fn app_state(&self, i: usize) -> &crate::app::CounterState {
        self.hosts[i].app.state()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Runs until the configured duration elapses.
    pub fn run(&mut self) {
        while !self.finished {
            let Some(fired) = self.sim.step() else { break };
            self.dispatch(fired.actor, fired.time, fired.event);
        }
    }

    /// Whether the mission has run to its configured end (or drained its
    /// event queue).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Advances the mission by at most `budget` discrete events and
    /// returns how many actually fired.
    ///
    /// This is the fleet's multiplexing surface: a worker grants each
    /// tenant a bounded quantum of virtual-time progress, so one tenant's
    /// recovery (rollback, replay, retransmissions — all just events) can
    /// never hold a shared worker for longer than one quantum. A return
    /// value below `budget` means the mission [`finished`](Self::finished).
    pub fn step_events(&mut self, budget: usize) -> usize {
        let mut fired_count = 0;
        while fired_count < budget && !self.finished {
            let Some(fired) = self.sim.step() else {
                self.finished = true;
                break;
            };
            self.dispatch(fired.actor, fired.time, fired.event);
            fired_count += 1;
        }
        fired_count
    }

    /// The mission tag this run stamps on its envelopes.
    pub fn mission(&self) -> synergy_net::MissionId {
        self.cfg.mission
    }
}

/// A configured end-to-end run.
pub struct Mission {
    system: System,
}

/// Everything a finished mission reports.
#[derive(Debug)]
pub struct MissionOutcome {
    /// Aggregated counters and rollback observations.
    pub metrics: RunMetrics,
    /// Global-state checker verdicts.
    pub verdicts: Verdicts,
    /// External messages that reached the device.
    pub device_messages: usize,
    /// Payload bytes of those messages, in arrival order — the stream the
    /// unmasked-regime oracle diff counts and localizes escapes against.
    pub device_stream: Vec<Vec<u8>>,
    /// Whether the shadow took over during the mission.
    pub shadow_promoted: bool,
    /// The recorded trace (empty if tracing was disabled).
    pub trace: Trace,
}

/// Extracts external payload bytes from a device log, in arrival order.
fn device_stream_of(log: &[(SimTime, Envelope)]) -> Vec<Vec<u8>> {
    log.iter()
        .filter_map(|(_, env)| match &env.body {
            synergy_net::MessageBody::External { payload } => Some(payload.clone()),
            _ => None,
        })
        .collect()
}

impl Mission {
    /// Prepares a mission.
    pub fn new(config: SystemConfig) -> Self {
        Mission {
            system: System::new(config),
        }
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> MissionOutcome {
        self.system.run();
        let shadow_promoted = self
            .system
            .index_of_pid(self.system.topology.shadow)
            .is_some_and(|i| {
                self.system.hosts[i].engine.role() == ProcessRole::Active
                    || self.system.hosts[i].dead
            });
        let System {
            metrics,
            verdicts,
            device_log,
            sim,
            ..
        } = self.system;
        MissionOutcome {
            metrics,
            verdicts,
            device_messages: device_log.len(),
            device_stream: device_stream_of(&device_log),
            shadow_promoted,
            trace: sim.into_trace(),
        }
    }
}

#[cfg(test)]
mod tests;
