//! The discrete-event loop: routes fired events to hosts and applies the
//! environment side of their actions.
//!
//! This layer is intentionally thin. Everything protocol-shaped lives in
//! [`ProcessHost`](super::ProcessHost); dispatch owns only the
//! environment — the scheduler, network, clocks, metrics, trace — and the
//! staleness filters (network incarnations, dead senders, TB epochs) that
//! need a view across hosts.

use synergy_clocks::LocalTime;
use synergy_des::{ActorId, SimTime};
use synergy_net::{Endpoint, Envelope, MessageBody, RouteDecision};

use crate::app::Application;
use crate::system::host::{HostAction, HostEvent};
use crate::system::System;

/// A scheduled simulation event.
#[derive(Debug, Clone)]
pub(super) enum Ev {
    /// An envelope arrives at an endpoint (`inc` voids pre-recovery
    /// traffic).
    Deliver { env: Envelope, inc: u64 },
    /// A TB timer deadline (voided when `epoch` is stale).
    TbTimer { deadline: LocalTime, epoch: u64 },
    /// A TB blocking period's end (voided when `epoch` is stale).
    BlockingOver { epoch: u64 },
    /// A workload arrival for one component.
    Tick {
        component: u8,
        external: bool,
        scripted: bool,
    },
    /// The design fault arms.
    SoftwareFaultActivate,
    /// The unmasked-regime bad-message injector arms.
    RegimeArm,
    /// A Byzantine-lite node flips value bytes in its latest stable
    /// checkpoint behind a valid CRC.
    ByzantineCorrupt { node: usize },
    /// A node loses power.
    HardwareCrash { node: usize },
    /// The system-wide restart after a crash.
    HardwareRecover,
    /// The clock fleet resynchronizes.
    Resync,
    /// End of mission.
    End,
}

impl System {
    pub(super) fn dispatch(&mut self, actor: ActorId, now: SimTime, ev: Ev) {
        match ev {
            Ev::End => self.finished = true,
            Ev::Deliver { env, inc } => self.on_deliver(actor, now, env, inc),
            Ev::TbTimer { deadline, epoch } => self.on_tb_timer(actor, now, deadline, epoch),
            Ev::BlockingOver { epoch } => self.on_blocking_over(actor, now, epoch),
            Ev::Tick {
                component,
                external,
                scripted,
            } => self.on_tick(now, component, external, scripted),
            Ev::SoftwareFaultActivate => {
                self.sim
                    .record(self.system_actor, "fault.software", "design fault armed");
                if let Some(i) = self.index_of_pid(self.topology.active) {
                    self.hosts[i].app.set_faulty(true);
                }
            }
            Ev::RegimeArm => {
                self.sim.record(
                    self.system_actor,
                    "regime.arm",
                    "bad-message injector armed",
                );
                self.regime_armed_at = Some(now);
                if let Some(i) = self.index_of_pid(self.topology.active) {
                    self.hosts[i].arm_regime();
                }
            }
            Ev::ByzantineCorrupt { node } => self.on_byzantine_corrupt(now, node),
            Ev::HardwareCrash { node } => self.on_hardware_crash(now, node),
            Ev::HardwareRecover => self.on_hardware_recover(now),
            Ev::Resync => self.on_resync(now),
        }
    }

    fn on_deliver(&mut self, actor: ActorId, now: SimTime, env: Envelope, inc: u64) {
        if inc != self.net_inc {
            return; // pre-recovery traffic
        }
        if actor == self.device_actor {
            self.sim
                .record_with(self.device_actor, || ("device.recv", env.to_string()));
            self.device_log.push((now, env));
            return;
        }
        let Some(i) = self.host_index(actor) else {
            return;
        };
        if !self.hosts[i].up {
            return; // crashed node: message lost
        }
        // Messages from a process dead by takeover are stale.
        if let Some(s) = self.index_of_pid(env.from()) {
            if self.hosts[s].dead {
                return;
            }
        }
        let actions = self.hosts[i].handle(HostEvent::Deliver(env), now);
        self.apply_host_actions(i, actions, now);
    }

    fn on_tb_timer(&mut self, actor: ActorId, now: SimTime, deadline: LocalTime, epoch: u64) {
        let Some(i) = self.host_index(actor) else {
            return;
        };
        let host = &mut self.hosts[i];
        if !host.up || host.dead || epoch != host.tb_epoch {
            return;
        }
        host.timer_event = None;
        let actions = host.handle(HostEvent::TimerExpired { deadline }, now);
        self.apply_host_actions(i, actions, now);
    }

    fn on_blocking_over(&mut self, actor: ActorId, now: SimTime, epoch: u64) {
        let Some(i) = self.host_index(actor) else {
            return;
        };
        if !self.hosts[i].up || epoch != self.hosts[i].tb_epoch {
            return;
        }
        let actions = self.hosts[i].handle(HostEvent::BlockingElapsed, now);
        self.apply_host_actions(i, actions, now);
    }

    fn on_tick(&mut self, now: SimTime, component: u8, external: bool, scripted: bool) {
        // Schedule the next arrival of this stream first (scripted sends
        // are one-shot).
        if !scripted {
            if let Some((_, _, stream)) = self
                .arrivals
                .iter_mut()
                .find(|(c, e, _)| *c == component && *e == external)
            {
                let gap = stream.next_interarrival();
                self.sim.schedule_in(
                    gap,
                    self.system_actor,
                    Ev::Tick {
                        component,
                        external,
                        scripted: false,
                    },
                );
            }
        }
        let targets = if component == 1 {
            [Some(self.topology.active), Some(self.topology.shadow)]
        } else {
            [Some(self.topology.peer), None]
        };
        for pid in targets.into_iter().flatten() {
            let Some(i) = self.index_of_pid(pid) else {
                continue;
            };
            if !self.hosts[i].up || self.hosts[i].dead {
                continue;
            }
            let actions = self.hosts[i].handle(HostEvent::Produce { external }, now);
            self.apply_host_actions(i, actions, now);
        }
    }

    /// Applies host actions in order; runs software recovery last when the
    /// host flagged a detected design fault.
    pub(super) fn apply_host_actions(&mut self, i: usize, actions: Vec<HostAction>, now: SimTime) {
        let mut software_error = false;
        for action in actions {
            match action {
                HostAction::Send(env) => self.forward_send(i, env, now),
                HostAction::SendAck(env) => self.route_only(env, now),
                HostAction::Delivered => self.metrics.messages_delivered += 1,
                HostAction::AtPerformed { pass } => {
                    self.metrics.at_runs += 1;
                    if pass {
                        self.sim.record(self.host_actors[i], "at.pass", "");
                    } else {
                        self.metrics.at_failures += 1;
                        self.sim.record(self.host_actors[i], "at.fail", "");
                    }
                }
                HostAction::SoftwareErrorDetected => software_error = true,
                HostAction::VolatileSaved { kind } => {
                    self.metrics.count_volatile(kind);
                    self.sim
                        .record_with(self.host_actors[i], || (format!("ckpt.{kind}"), "volatile"));
                }
                HostAction::WriteThroughCommitted => {
                    self.metrics.stable_commits += 1;
                    self.account_stable_commit(i);
                    self.sim
                        .record(self.host_actors[i], "ckpt.stable", "write-through type-2");
                }
                HostAction::StableWriteBegun {
                    label,
                    expected_dirty,
                    fallback,
                } => {
                    if fallback {
                        self.metrics.dirty_fallbacks += 1;
                    }
                    self.sim.record_with(self.host_actors[i], || {
                        (
                            "tb.write",
                            format!("{label} expected_dirty={}", u8::from(expected_dirty)),
                        )
                    });
                }
                HostAction::StableReplaced => {
                    self.metrics.stable_replacements += 1;
                    self.sim.record(
                        self.host_actors[i],
                        "tb.replace",
                        "dirty cleared in blocking: switch to current state",
                    );
                }
                HostAction::StableCommitted { ndc } => {
                    self.metrics.stable_commits += 1;
                    self.account_stable_commit(i);
                    self.sim.record_with(self.host_actors[i], || {
                        ("ckpt.stable", format!("committed {ndc}"))
                    });
                }
                HostAction::BlockingStarted { duration } => {
                    self.metrics.blocking_periods += 1;
                    self.metrics.blocking_total += duration;
                    let host = &self.hosts[i];
                    let epoch = host.tb_epoch;
                    // Blocking is defined on the local clock; translate its
                    // end into true time through this node's clock.
                    let node = host.node;
                    let end_local = self.clocks.read(node, now) + duration;
                    let end_true = self.clocks.when_local(node, end_local).max(now);
                    self.sim
                        .schedule_at(end_true, self.host_actors[i], Ev::BlockingOver { epoch });
                }
                HostAction::ScheduleTimer { at } => self.schedule_tb_timer(i, at, now),
                HostAction::ResyncRequested => {
                    if !self.resync_pending {
                        self.resync_pending = true;
                        // One message round-trip of latency for the
                        // resynchronization protocol.
                        self.sim
                            .schedule_in(self.cfg.tmax, self.system_actor, Ev::Resync);
                    }
                }
                HostAction::RegimeCorrupted { caught, offset } => {
                    if caught {
                        self.verdicts.at_catches += 1;
                        if self.metrics.regime_detection_secs.is_none() {
                            let armed = self.regime_armed_at.unwrap_or(now);
                            self.metrics.regime_detection_secs =
                                Some(now.saturating_duration_since(armed).as_secs_f64());
                        }
                        self.sim.record_with(self.host_actors[i], || {
                            ("regime.at-catch", format!("corrupt byte at +{offset}"))
                        });
                    } else {
                        self.verdicts.at_escapes += 1;
                        self.sim.record_with(self.host_actors[i], || {
                            (
                                "regime.at-escape",
                                format!("false negative, corrupt byte at +{offset}"),
                            )
                        });
                    }
                }
                HostAction::Record { kind, detail } => {
                    self.sim.record(self.host_actors[i], kind, detail);
                }
            }
        }
        if software_error {
            self.software_recovery(now);
        }
    }

    /// Accounts the freshly committed stable checkpoint of host `i` through
    /// the incremental chain format, when delta accounting is enabled. Uses
    /// the size-only measurement path: steady state costs a refcount bump of
    /// the committed image, no materialized regions.
    fn account_stable_commit(&mut self, i: usize) {
        let Some(codecs) = &mut self.ckpt_codecs else {
            return;
        };
        let Some(ckpt) = self.hosts[i].stable.latest_shared() else {
            return;
        };
        let cost = codecs[i].measure_committed(&ckpt);
        self.metrics.stable_bytes_full += cost.full_bytes;
        self.metrics.stable_bytes_delta += cost.encoded_bytes;
    }

    /// Sends an envelope on behalf of host `i`, performing the host's
    /// send-side bookkeeping first (recovery resends).
    pub(super) fn send_from(&mut self, i: usize, env: Envelope, now: SimTime) {
        self.hosts[i].note_send(&env);
        self.forward_send(i, env, now);
    }

    /// The environment side of a protocol send: ground truth, metrics,
    /// trace, routing.
    fn forward_send(&mut self, i: usize, env: Envelope, now: SimTime) {
        if let MessageBody::PassedAt { msg_sn, .. } = env.body {
            self.global_validated = self.global_validated.max(msg_sn);
        }
        self.metrics.messages_sent += 1;
        self.sim
            .record_with(self.host_actors[i], || ("msg.send", env.to_string()));
        self.route_only(env, now);
    }

    pub(super) fn route_only(&mut self, env: Envelope, now: SimTime) {
        let actor = match env.to {
            Endpoint::Process(p) => match self.index_of_pid(p) {
                Some(idx) => self.host_actors[idx],
                None => return,
            },
            Endpoint::Device(_) => self.device_actor,
        };
        match self.net.route(now, &env) {
            RouteDecision::Deliver { at, duplicate_at } => {
                let inc = self.net_inc;
                self.sim.schedule_at(
                    at.max(now),
                    actor,
                    Ev::Deliver {
                        env: env.clone(),
                        inc,
                    },
                );
                if let Some(dup) = duplicate_at {
                    self.sim
                        .schedule_at(dup.max(now), actor, Ev::Deliver { env, inc });
                }
            }
            RouteDecision::Dropped => {}
        }
    }

    pub(super) fn schedule_tb_timer(&mut self, i: usize, at_local: LocalTime, now: SimTime) {
        let node = self.hosts[i].node;
        let fire = self.clocks.when_local(node, at_local).max(now);
        let epoch = self.hosts[i].tb_epoch;
        let id = self.sim.schedule_at(
            fire,
            self.host_actors[i],
            Ev::TbTimer {
                deadline: at_local,
                epoch,
            },
        );
        self.hosts[i].timer_event = Some(id);
    }

    /// Marks `node` as Byzantine from this instant on. The node does not
    /// corrupt its store at rest — it *serves* value-flipped checkpoints
    /// (still behind valid CRCs) whenever a recovery reads from it, so the
    /// lie survives however many clean commits land in between. The flip
    /// itself happens in [`System::on_hardware_recover`]; this event only
    /// stamps the arming instant into the trace.
    fn on_byzantine_corrupt(&mut self, _now: SimTime, node: usize) {
        self.sim.record_with(self.system_actor, || {
            (
                "regime.byzantine",
                format!(
                    "{} now serves value-flipped checkpoints behind valid CRCs",
                    crate::faults::NodeId::from_index(node)
                        .map_or("?".to_string(), |n| n.to_string()),
                ),
            )
        });
    }

    pub(super) fn on_resync(&mut self, now: SimTime) {
        self.resync_pending = false;
        self.metrics.resyncs += 1;
        self.clocks.resync_all(now);
        self.sim
            .record(self.system_actor, "clocks.resync", "fleet resynchronized");
        // Regime axis 3: a failed resynchronization leaves one clock beyond
        // the δ envelope. Inject, then *detect* — the deviation check is the
        // flag the verdict classifier keys on.
        if let Some(plan) = self.cfg.regime.resync_violation {
            if now >= plan.after {
                self.clocks.inject_skew(plan.node, plan.excess, now);
            }
        }
        let deviation = self.clocks.max_pairwise_deviation(now);
        if deviation > self.clocks.params().delta {
            self.sync_violated = true;
            self.verdicts.resync_violations += 1;
            self.verdicts.violations.push(crate::checkers::Violation {
                property: "clock-sync",
                detail: format!(
                    "post-resync deviation {:.1}us exceeds delta {:.1}us",
                    deviation.as_secs_f64() * 1e6,
                    self.clocks.params().delta.as_secs_f64() * 1e6
                ),
            });
            self.sim.record_with(self.system_actor, || {
                (
                    "regime.resync-violation",
                    format!("deviation {:.1}us > delta", deviation.as_secs_f64() * 1e6),
                )
            });
        } else {
            self.sync_violated = false;
        }
        // Timer deadlines are local-clock values; after slewing, their true
        // fire times change — reschedule every pending timer.
        for i in 0..self.hosts.len() {
            if self.hosts[i].tb.is_none() {
                continue;
            }
            let node = self.hosts[i].node;
            let now_local = self.clocks.read(node, now);
            let actions =
                self.hosts[i].tb_event(synergy_tb::Event::ResyncCompleted { now_local }, now);
            self.apply_host_actions(i, actions, now);
            let deadline = self.hosts[i].tb.as_ref().expect("checked").next_deadline();
            if let Some(old) = self.hosts[i].timer_event.take() {
                self.sim.cancel(old);
            }
            if self.hosts[i].up && !self.hosts[i].dead {
                self.schedule_tb_timer(i, deadline, now);
            }
        }
    }
}
