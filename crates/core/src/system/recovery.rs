//! Recovery: epoch-line selection, torn-write handling, volatile rollback
//! and unacked/receive-log replay.
//!
//! The decision logic is exposed as pure functions ([`epoch_line`],
//! [`filter_replays`], [`volatile_copy_payload`], [`prune_unacked`]) so it
//! can be unit-tested without a full [`System`]; the two recovery
//! procedures (software takeover, global hardware rollback) orchestrate
//! them over the hosts.

use std::sync::Arc;

use synergy_des::SimTime;
use synergy_mdcd::{EngineSnapshot, Event as MdcdEvent, ProcessRole, RecoveryDecision};
use synergy_net::{AckTracker, CkptSeqNo, Endpoint, Envelope, MessageBody, MsgSeqNo, ProcessId};
use synergy_storage::{Checkpoint, StableStore};
use synergy_tb::{Event as TbEvent, TbEngine};

use crate::app::{Application, CounterApp};
use crate::checkers::{GlobalChecker, RestoredState, Violation};
use crate::metrics::{RollbackCause, RollbackRecord};
use crate::payload::CheckpointPayload;
use crate::system::host::ProcessHost;
use crate::system::System;

/// The newest stable epoch committed by *every* live process.
///
/// TB stable checkpoints are epoch-numbered, and a crash can tear one
/// process's in-flight write while its peers commit theirs
/// ([`StableStore::crash`] discards the torn record); the mutually
/// consistent recovery line is therefore the minimum over the live
/// processes' newest committed epochs. A process with no committed
/// checkpoint contributes epoch 0 (restart from the initial state).
pub fn epoch_line<'a>(live: impl Iterator<Item = &'a StableStore>) -> Option<u64> {
    live.map(|s| s.latest().map_or(0, |c| c.seq())).min()
}

/// Builds the stable payload for a dirty process's volatile-copy write.
///
/// Two recoverability amendments ride on the copied state (DESIGN.md §8,
/// decisions 4 and 5): the currently unacknowledged messages are saved —
/// but only those the copied state reflects as sent, so recovery cannot
/// re-send messages the restored state never produced — and the receipts
/// delivered after the copied state are attached for driver-filtered
/// replay (their senders may already hold the acknowledgments).
pub fn volatile_copy_payload(
    vol: &Checkpoint,
    acks: &AckTracker,
    recv_log: &[Arc<Envelope>],
) -> CheckpointPayload {
    let p = CheckpointPayload::from_checkpoint(vol).expect("volatile checkpoints decode");
    amend_volatile_copy(p, acks, recv_log)
}

/// The amendment half of [`volatile_copy_payload`], for callers that already
/// hold the decoded payload (the host caches the image of its latest
/// volatile checkpoint precisely to skip the decode on the TB hot path).
pub fn amend_volatile_copy(
    mut p: CheckpointPayload,
    acks: &AckTracker,
    recv_log: &[Arc<Envelope>],
) -> CheckpointPayload {
    let horizon = p.engine.msg_sn;
    p.unacked = acks
        .unacked_shared()
        .into_iter()
        .filter(|e| e.id.seq <= horizon)
        .collect();
    p.replay = recv_log.to_vec();
    p
}

/// Drops acknowledgment tracking for messages beyond `horizon`: per the
/// restored state, they were never sent.
pub fn prune_unacked(acks: &mut AckTracker, horizon: MsgSeqNo) {
    let kept: Vec<Arc<Envelope>> = acks
        .unacked_shared()
        .into_iter()
        .filter(|e| e.id.seq <= horizon)
        .collect();
    acks.restore(kept);
}

/// Selects the receive-log entries to replay into a restored cut.
///
/// A message delivered after the copied state but acknowledged before the
/// sender's stable write is reflected as sent by the sender's restored
/// state yet absent from both the receiver's state and the unacked set.
/// The receiver saved it in its receive log; replay exactly those entries
/// the restored cut reflects as sent — and, for the original active
/// process's output, only validated ones, since anything else would
/// re-contaminate a restored-clean state. Returns `(receiver, envelope)`
/// pairs in restored-cut order.
pub fn filter_replays(
    restored: &[(ProcessId, CheckpointPayload)],
    original_active: ProcessId,
    global_validated: MsgSeqNo,
) -> Vec<(ProcessId, Arc<Envelope>)> {
    let sent_reflected = |env: &Envelope| {
        restored.iter().any(|(pid, p)| {
            *pid == env.from()
                && p.sent
                    .iter()
                    .any(|r| Endpoint::Process(r.to) == env.to && r.seq == env.id.seq)
        })
    };
    let mut replays = Vec::new();
    for (pid, payload) in restored {
        for env in &payload.replay {
            if !sent_reflected(env) {
                continue;
            }
            if env.from() == original_active && env.id.seq > global_validated {
                continue;
            }
            replays.push((*pid, Arc::clone(env)));
        }
    }
    replays
}

impl ProcessHost {
    /// Restores this host from its most recent volatile checkpoint;
    /// returns the rollback distance in seconds, or `None` when no
    /// volatile checkpoint exists.
    pub fn rollback_to_volatile(&mut self, now: SimTime) -> Option<f64> {
        let ckpt = self.volatile.latest_shared()?;
        let payload = match self.volatile_image() {
            Some(img) => img.clone(),
            None => CheckpointPayload::from_checkpoint(&ckpt).expect("volatile decodes"),
        };
        let distance = now
            .saturating_duration_since(payload.state_time())
            .as_secs_f64();
        self.app.restore(&payload.app);
        self.engine.restore(&payload.engine);
        self.restore_sent_log(&payload.sent);
        self.recv_log.clear();
        prune_unacked(&mut self.acks, payload.engine.msg_sn);
        // If a TB blocking period is in progress, the restored engine must
        // re-enter it (restore cleared the hold state).
        if self.tb.as_ref().is_some_and(TbEngine::is_blocking) {
            let actions = self.engine.handle(MdcdEvent::BlockingStarted);
            debug_assert!(actions.is_empty());
        }
        Some(distance)
    }

    /// Installs a restored stable payload: application, engine, sent log
    /// and saved unacked set. Pre-crash volatile checkpoints and receive
    /// logs belong to the abandoned timeline and are discarded.
    pub fn restore_from_payload(&mut self, payload: &CheckpointPayload) {
        self.app.restore(&payload.app);
        self.engine.restore(&payload.engine);
        self.restore_sent_log(&payload.sent);
        self.acks.restore(payload.unacked.iter().map(Arc::clone));
        self.wipe_volatile();
        self.recv_log.clear();
    }
}

// ----------------------------------------------------------------------
// Software (MDCD) recovery
// ----------------------------------------------------------------------

impl System {
    pub(super) fn software_recovery(&mut self, now: SimTime) {
        if self.software_recovered {
            return;
        }
        self.software_recovered = true;
        self.metrics.software_recoveries += 1;
        self.sim.record(
            self.system_actor,
            "recovery.software",
            "AT failure: shadow takeover",
        );
        let act = self
            .index_of_pid(self.topology.active)
            .expect("active host");
        let sdw = self
            .index_of_pid(self.topology.shadow)
            .expect("shadow host");
        let peer = self.index_of_pid(self.topology.peer).expect("peer host");
        // The active is dead; its in-flight messages are discarded on
        // delivery.
        self.hosts[act].up = false;
        self.hosts[act].dead = true;

        // Local decisions + rollbacks for shadow and peer.
        for i in [sdw, peer] {
            let decision = self.hosts[i]
                .engine
                .recovery_decision()
                .expect("shadow/peer decide locally");
            let distance = match decision {
                RecoveryDecision::RollBack => self.rollback_host(i, now),
                RecoveryDecision::RollForward => 0.0,
            };
            self.metrics.rollbacks.push(RollbackRecord {
                process: self.hosts[i].pid,
                cause: RollbackCause::Software,
                decision,
                distance_secs: distance,
                at: now,
            });
            self.sim.record_with(self.host_actors[i], || {
                (
                    "recovery.decision",
                    format!("{decision} ({distance:.3}s undone)"),
                )
            });
        }

        // Shadow takes over and re-sends unvalidated suppressed messages.
        let plan = self.hosts[sdw].engine.take_over();
        if let Some(p) = self.hosts[peer].engine.as_peer_mut() {
            p.retarget_active(self.topology.shadow);
        }
        let resend = plan.resend;
        self.metrics.messages_resent += resend.len() as u64;
        for env in resend {
            self.send_from(sdw, env, now);
        }

        // Check the recovered (volatile) cut.
        let mut states: Vec<RestoredState> = Vec::with_capacity(2);
        for i in [sdw, peer] {
            let payload = self.hosts[i].current_payload(now);
            let host = &self.hosts[i];
            states.push(RestoredState {
                pid: host.pid,
                role: host.engine.role(),
                synthetic_history: host.synthetic_history,
                payload,
            });
        }
        let checker = GlobalChecker::new(self.topology.active);
        let v = checker.check(&states, self.global_validated);
        self.verdicts.merge(v);
    }

    /// [`ProcessHost::rollback_to_volatile`] with the driver's violation
    /// accounting for the impossible missing-checkpoint case.
    fn rollback_host(&mut self, i: usize, now: SimTime) -> f64 {
        match self.hosts[i].rollback_to_volatile(now) {
            Some(distance) => distance,
            None => {
                self.verdicts.violations.push(Violation {
                    property: "validity-self",
                    detail: format!(
                        "{} must roll back but has no volatile checkpoint",
                        self.hosts[i].pid
                    ),
                });
                0.0
            }
        }
    }

    // ------------------------------------------------------------------
    // Hardware fault + global rollback recovery
    // ------------------------------------------------------------------

    pub(super) fn on_hardware_crash(&mut self, _now: SimTime, node: usize) {
        let Some(i) = self.index_of_node(node) else {
            return;
        };
        if self.hosts[i].dead {
            return; // crashing a dead node changes nothing
        }
        self.sim.record_with(self.host_actors[i], || {
            ("fault.hardware", format!("node {node} crashed"))
        });
        let host = &mut self.hosts[i];
        host.up = false;
        host.wipe_volatile();
        if host.stable.is_writing() {
            self.metrics.torn_writes += 1;
        }
        host.stable.crash();
        self.crash_pending.push(i);
        self.sim.schedule_in(
            self.cfg.restart_delay,
            self.system_actor,
            super::dispatch::Ev::HardwareRecover,
        );
    }

    pub(super) fn on_hardware_recover(&mut self, now: SimTime) {
        if self.crash_pending.is_empty() {
            return;
        }
        self.crash_pending.clear();
        self.metrics.hardware_recoveries += 1;
        self.sim.record(
            self.system_actor,
            "recovery.hardware",
            "global rollback to stable checkpoints",
        );
        // All pre-crash traffic and control events are void.
        self.net_inc += 1;

        // Pick the recovery line: the epoch line under TB schemes;
        // write-through checkpoints are taken at each process's own
        // validations (no epochs), so each restores its newest record,
        // whose mutual consistency FIFO delivery of the `passed_AT`
        // broadcast provides.
        let recovery_epoch: Option<u64> = if self.policy().epoch_line_recovery() {
            epoch_line(self.hosts.iter().filter(|h| !h.dead).map(|h| &h.stable))
        } else {
            None
        };

        // Regime axis 3: the epoch-line argument (paper §3.2) assumes every
        // blocking period ran under the δ/ρ envelope. If the last
        // resynchronization violated that bound, the line just computed is
        // provably stale — flag it rather than silently trusting it.
        if self.sync_violated {
            self.verdicts.stale_epoch_lines += 1;
            self.verdicts.violations.push(crate::checkers::Violation {
                property: "epoch-line-stale",
                detail: format!(
                    "epoch line {:?} computed under violated clock bound \
                     (post-resync deviation exceeded delta)",
                    recovery_epoch
                ),
            });
            self.sim.record_with(self.system_actor, || {
                (
                    "regime.stale-epoch",
                    format!("epoch line {recovery_epoch:?} is stale"),
                )
            });
        }

        // Restore every live process from stable storage and gather the
        // restored cut for checking.
        let mut restored_payloads: Vec<(usize, CheckpointPayload)> = Vec::new();
        let mut resend: Vec<(usize, Arc<Envelope>)> = Vec::new();
        for i in 0..self.hosts.len() {
            if self.hosts[i].dead {
                continue;
            }
            self.hosts[i].up = true;
            self.hosts[i].tb_epoch += 1;
            self.hosts[i].blocking_started_at = None;
            // A live host may have been mid-blocking with a stable write in
            // flight; the global rollback supersedes that establishment.
            self.hosts[i].stable.abort_write();
            let mut chosen = match recovery_epoch {
                Some(epoch) => self.hosts[i].stable.latest_at_or_before(epoch).cloned(),
                None => self.hosts[i].stable.latest_shared(),
            };
            // Regime axis 4: a Byzantine-lite node serves value-flipped
            // checkpoints behind valid CRCs — the lie is applied at read
            // time, so it survives any number of clean commits since the
            // arming instant. Nothing between here and the device can see
            // it; only the oracle device-stream diff does.
            if let Some(byz) = self.cfg.regime.byzantine {
                if byz.node == self.hosts[i].node && now >= byz.at {
                    if let Some(corrupt) = chosen
                        .as_ref()
                        .and_then(crate::regime::corrupt_checkpoint_value)
                    {
                        self.verdicts.byz_corruptions += 1;
                        self.sim.record_with(self.system_actor, || {
                            (
                                "regime.byzantine",
                                format!(
                                    "{} served value-flipped checkpoint {} to recovery",
                                    self.hosts[i].pid,
                                    corrupt.seq()
                                ),
                            )
                        });
                        chosen = Some(corrupt);
                    }
                }
            }
            let restored_seq = chosen.as_ref().map_or(0, |c| c.seq());
            let payload = match chosen {
                Some(ckpt) => CheckpointPayload::from_checkpoint(&ckpt).expect("stable decodes"),
                None => {
                    // No stable checkpoint yet: restart from the initial
                    // state (all progress lost).
                    let fresh = CounterApp::new(self.cfg.seed ^ 0xA5A5);
                    CheckpointPayload::new(
                        fresh.snapshot(),
                        EngineSnapshot::default(),
                        Vec::new(),
                        Vec::new(),
                        SimTime::ZERO,
                    )
                }
            };
            let distance = now
                .saturating_duration_since(payload.state_time())
                .as_secs_f64();
            self.metrics.rollbacks.push(RollbackRecord {
                process: self.hosts[i].pid,
                cause: RollbackCause::Hardware,
                decision: RecoveryDecision::RollBack,
                distance_secs: distance,
                at: now,
            });
            self.hosts[i].restore_from_payload(&payload);
            for env in &payload.unacked {
                resend.push((i, Arc::clone(env)));
            }
            restored_payloads.push((i, payload.clone()));
            // Align the engine's Ndc with the recovered stable epoch and
            // restart the TB timers.
            if self.hosts[i].tb.is_some() {
                let ndc = CkptSeqNo(restored_seq);
                let actions =
                    self.hosts[i].engine_event(MdcdEvent::StableCheckpointCommitted(ndc), now);
                self.apply_host_actions(i, actions, now);
                let node = self.hosts[i].node;
                let now_local = self.clocks.read(node, now);
                let actions = self.hosts[i].tb_event(TbEvent::Restarted { now_local, ndc }, now);
                self.apply_host_actions(i, actions, now);
            }
            self.sim.record_with(self.host_actors[i], || {
                (
                    "recovery.restore",
                    format!("stable state from {}", payload.state_time()),
                )
            });
        }

        // Replay receive logs attached to volatile-copy checkpoints into
        // the restored cut (see `filter_replays`).
        let restored_by_pid: Vec<(ProcessId, CheckpointPayload)> = restored_payloads
            .iter()
            .map(|(i, p)| (self.hosts[*i].pid, p.clone()))
            .collect();
        let replays = filter_replays(
            &restored_by_pid,
            self.topology.active,
            self.global_validated,
        );
        for (pid, env) in replays {
            let Some(i) = self.index_of_pid(pid) else {
                continue;
            };
            if let MessageBody::Application { payload, .. } = &env.body {
                self.hosts[i]
                    .app
                    .on_message(env.from(), env.id.seq, payload);
                self.metrics.messages_replayed += 1;
                self.sim
                    .record_with(self.host_actors[i], || ("msg.replay", env.to_string()));
            }
        }

        // Check the restored cut (post-replay) before any realignment.
        let restored: Vec<RestoredState> = restored_payloads
            .iter()
            .map(|(i, payload)| {
                let mut p = payload.clone();
                p.app = self.hosts[*i].app.snapshot().into();
                RestoredState {
                    pid: self.hosts[*i].pid,
                    role: self.hosts[*i].engine.role(),
                    synthetic_history: self.hosts[*i].synthetic_history,
                    payload: p,
                }
            })
            .collect();
        let checker = GlobalChecker::new(self.topology.active);
        let v = checker.check(&restored, self.global_validated);
        self.verdicts.merge(v);

        // Re-send saved unacknowledged messages (the TB recoverability
        // rule).
        self.metrics.messages_resent += resend.len() as u64;
        for (i, env) in resend {
            self.route_only((*env).clone(), now);
            self.sim
                .record_with(self.host_actors[i], || ("msg.resend", env.to_string()));
        }

        let (Some(act), Some(sdw)) = (
            self.index_of_pid(self.topology.active),
            self.index_of_pid(self.topology.shadow),
        ) else {
            return;
        };
        // Guarded operation restarts from a common state: the shadow is
        // refreshed from the restored active replica (DESIGN.md §2 — the
        // GSU middleware re-initializes both versions from one state when
        // (re)entering guarded operation).
        if !self.hosts[act].dead && !self.hosts[sdw].dead {
            let act_state = self.hosts[act].app.snapshot();
            let act_sn = self.hosts[act].engine.snapshot().msg_sn;
            let shadow = &mut self.hosts[sdw];
            shadow.app.restore(&act_state);
            let mut snap = shadow.engine.snapshot();
            snap.msg_sn = act_sn;
            snap.vr_act = act_sn;
            snap.dirty = false;
            snap.log.clear();
            shadow.engine.restore(&snap);
            shadow.synthetic_history = true;
            self.sim.record(
                self.host_actors[sdw],
                "recovery.refresh",
                "shadow re-aligned to restored active state",
            );
        }
        // A dead active means the shadow must remain (or become) promoted.
        if self.hosts[act].dead && self.hosts[sdw].engine.role() != ProcessRole::Active {
            let plan = self.hosts[sdw].engine.take_over();
            if let Some(peer) = self.index_of_pid(self.topology.peer) {
                if let Some(p) = self.hosts[peer].engine.as_peer_mut() {
                    p.retarget_active(self.topology.shadow);
                }
            }
            self.metrics.messages_resent += plan.resend.len() as u64;
            for env in plan.resend {
                self.send_from(sdw, env, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::MsgId;

    const ACT: ProcessId = ProcessId(1);
    const SDW: ProcessId = ProcessId(2);
    const PEER: ProcessId = ProcessId(3);

    fn payload_at(t: u64) -> CheckpointPayload {
        CheckpointPayload::new(
            vec![t as u8],
            EngineSnapshot::default(),
            Vec::new(),
            Vec::new(),
            SimTime::from_nanos(t),
        )
    }

    fn store_with_commits(epochs: &[u64]) -> StableStore {
        let mut s = StableStore::new();
        for &e in epochs {
            let ckpt = payload_at(e).into_checkpoint(e, "stable-current").unwrap();
            s.begin_write(ckpt).unwrap();
            s.commit_write().unwrap();
        }
        s
    }

    fn app_env(from: ProcessId, seq: u64, to: ProcessId) -> Envelope {
        Envelope::new(
            MsgId {
                from,
                seq: MsgSeqNo(seq),
            },
            to,
            MessageBody::Application {
                payload: vec![1],
                dirty: false,
            },
        )
    }

    #[test]
    fn epoch_line_rolls_back_to_a_torn_writers_last_commit() {
        // Three processes commit epochs 1 and 2; one tears its epoch-3
        // write in the crash while the other two commit theirs. The
        // recovery line is epoch 2 — the newest epoch everyone holds.
        let a = store_with_commits(&[1, 2, 3]);
        let mut b = store_with_commits(&[1, 2]);
        let ckpt = payload_at(3).into_checkpoint(3, "stable-current").unwrap();
        b.begin_write(ckpt).unwrap();
        b.crash(); // torn: epoch 3 never committed
        let c = store_with_commits(&[1, 2, 3]);
        assert_eq!(b.latest().map(|c| c.seq()), Some(2), "torn write discarded");
        assert_eq!(epoch_line([&a, &b, &c].into_iter()), Some(2));
    }

    #[test]
    fn epoch_line_of_aligned_stores_is_their_epoch() {
        let stores = [
            store_with_commits(&[1, 2]),
            store_with_commits(&[1, 2]),
            store_with_commits(&[1, 2]),
        ];
        assert_eq!(epoch_line(stores.iter()), Some(2));
    }

    #[test]
    fn epoch_line_with_an_empty_store_is_zero() {
        // A process that never committed forces a restart from the
        // initial state for everyone.
        let stores = [store_with_commits(&[1, 2, 3]), StableStore::new()];
        assert_eq!(epoch_line(stores.iter()), Some(0));
        assert_eq!(epoch_line(std::iter::empty()), None);
    }

    #[test]
    fn replay_keeps_only_sent_reflected_entries() {
        // P2's receive log holds three messages from the active; the
        // active's restored state reflects seqs 1..=3 as sent, but only
        // seqs 1..=2 are validated. Seq 9 was never reflected as sent.
        let mut act = payload_at(10);
        act.sent = [1u64, 2, 3]
            .iter()
            .map(|&seq| crate::payload::SentRecord {
                to: PEER,
                seq: MsgSeqNo(seq),
            })
            .collect();
        let mut p2 = payload_at(10);
        p2.replay = vec![
            app_env(ACT, 1, PEER),
            app_env(ACT, 2, PEER),
            app_env(ACT, 3, PEER), // beyond the validation horizon
            app_env(ACT, 9, PEER), // not reflected as sent
            app_env(SDW, 1, PEER), // sender not in the restored cut
        ]
        .into_iter()
        .map(Arc::new)
        .collect();
        let restored = vec![(ACT, act), (PEER, p2)];
        let replays = filter_replays(&restored, ACT, MsgSeqNo(2));
        let seqs: Vec<u64> = replays.iter().map(|(_, e)| e.id.seq.0).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert!(replays.iter().all(|(pid, _)| *pid == PEER));
    }

    #[test]
    fn replay_of_non_active_senders_ignores_the_validation_horizon() {
        // The validated-only guard protects restored-clean states from the
        // active's unvalidated output; peer traffic replays whenever the
        // restored cut reflects it as sent.
        let mut peer = payload_at(10);
        peer.sent = vec![crate::payload::SentRecord {
            to: ACT,
            seq: MsgSeqNo(5),
        }]
        .into();
        let mut act = payload_at(10);
        act.replay = vec![Arc::new(app_env(PEER, 5, ACT))];
        let restored = vec![(ACT, act), (PEER, peer)];
        let replays = filter_replays(&restored, ACT, MsgSeqNo(0));
        assert_eq!(replays.len(), 1);
        assert_eq!(replays[0].0, ACT);
        assert_eq!(replays[0].1.id.seq, MsgSeqNo(5));
    }

    #[test]
    fn volatile_copy_attaches_filtered_unacked_and_receive_log() {
        // The copied state's horizon is msg_sn = 2: unacked seqs 3 and 4
        // were never sent per the restored state and must not ride along.
        let mut p = payload_at(7);
        p.engine.msg_sn = MsgSeqNo(2);
        let vol = p.into_checkpoint(1, "type-1").unwrap();
        let mut acks = AckTracker::new();
        for seq in 1..=4 {
            acks.on_send(app_env(ACT, seq, PEER));
        }
        let recv_log = vec![Arc::new(app_env(PEER, 8, ACT))];
        let copy = volatile_copy_payload(&vol, &acks, &recv_log);
        let unacked: Vec<u64> = copy.unacked.iter().map(|e| e.id.seq.0).collect();
        assert_eq!(unacked, vec![1, 2]);
        assert_eq!(copy.replay.len(), 1);
        assert_eq!(copy.replay[0].id.seq, MsgSeqNo(8));
    }

    #[test]
    fn prune_unacked_respects_the_horizon() {
        let mut acks = AckTracker::new();
        for seq in 1..=5 {
            acks.on_send(app_env(ACT, seq, PEER));
        }
        prune_unacked(&mut acks, MsgSeqNo(3));
        let kept: Vec<u64> = acks.unacked().iter().map(|e| e.id.seq.0).collect();
        assert_eq!(kept, vec![1, 2, 3]);
    }
}
