//! Per-scheme protocol policy.
//!
//! The four schemes of the paper's evaluation (§5) differ in exactly three
//! choices: which MDCD configuration runs, which TB variant (if any) drives
//! stable checkpointing, and whether validations write through to stable
//! storage. [`SchemePolicy`] names those choices once; the host and
//! recovery layers consult the policy instead of matching on
//! [`Scheme`](crate::config::Scheme) themselves.

use synergy_mdcd::MdcdConfig;
use synergy_tb::TbVariant;

use crate::config::Scheme;

/// The protocol choices one scheme makes, consulted by the host and
/// recovery layers.
pub trait SchemePolicy: Send + Sync {
    /// The scheme's display name (matches the [`Scheme`] variant).
    fn name(&self) -> &'static str;

    /// The MDCD configuration this scheme runs.
    fn mdcd_config(&self) -> MdcdConfig;

    /// The TB variant this scheme runs, if any.
    fn tb_variant(&self) -> Option<TbVariant>;

    /// Whether Type-2 checkpoints are written through to stable storage
    /// at every validation (the §3 write-through baseline).
    fn stable_on_validation(&self) -> bool {
        false
    }

    /// Whether hardware recovery picks an epoch line — the newest stable
    /// epoch committed by *every* live process. TB schemes number their
    /// checkpoints by epoch and a crash can tear one process's in-flight
    /// write while its peers commit theirs; epoch-less schemes restore
    /// each process's newest record independently.
    fn epoch_line_recovery(&self) -> bool {
        self.tb_variant().is_some()
    }
}

/// The paper's contribution: modified MDCD + adapted TB, coordinated
/// through dirty bits and `Ndc` matching (§3–§4).
struct Coordinated;

impl SchemePolicy for Coordinated {
    fn name(&self) -> &'static str {
        "Coordinated"
    }

    fn mdcd_config(&self) -> MdcdConfig {
        MdcdConfig::modified()
    }

    fn tb_variant(&self) -> Option<TbVariant> {
        Some(TbVariant::Adapted)
    }
}

/// The write-through baseline of §3: original MDCD whose Type-2
/// checkpoints are persisted on every validation; no TB timers.
struct WriteThrough;

impl SchemePolicy for WriteThrough {
    fn name(&self) -> &'static str {
        "WriteThrough"
    }

    fn mdcd_config(&self) -> MdcdConfig {
        MdcdConfig::write_through()
    }

    fn tb_variant(&self) -> Option<TbVariant> {
        None
    }

    fn stable_on_validation(&self) -> bool {
        true
    }
}

/// The invalid simple combination of §4.1: original MDCD and original TB
/// running concurrently with no coordination.
struct Naive;

impl SchemePolicy for Naive {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn mdcd_config(&self) -> MdcdConfig {
        MdcdConfig::original()
    }

    fn tb_variant(&self) -> Option<TbVariant> {
        Some(TbVariant::Original)
    }
}

/// Original MDCD alone: software fault tolerance only, hardware faults
/// lose all progress.
struct MdcdOnly;

impl SchemePolicy for MdcdOnly {
    fn name(&self) -> &'static str {
        "MdcdOnly"
    }

    fn mdcd_config(&self) -> MdcdConfig {
        MdcdConfig::original()
    }

    fn tb_variant(&self) -> Option<TbVariant> {
        None
    }
}

/// The policy for `scheme`. This is the only place a [`Scheme`] value is
/// matched; everything downstream goes through the returned trait object.
pub fn policy_for(scheme: Scheme) -> &'static dyn SchemePolicy {
    match scheme {
        Scheme::Coordinated => &Coordinated,
        Scheme::WriteThrough => &WriteThrough,
        Scheme::Naive => &Naive,
        Scheme::MdcdOnly => &MdcdOnly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_mdcd::Variant;

    #[test]
    fn policies_mirror_the_paper_table() {
        let co = policy_for(Scheme::Coordinated);
        assert_eq!(co.mdcd_config().variant, Variant::Modified);
        assert_eq!(co.tb_variant(), Some(TbVariant::Adapted));
        assert!(!co.stable_on_validation());
        assert!(co.epoch_line_recovery());

        let wt = policy_for(Scheme::WriteThrough);
        assert_eq!(wt.mdcd_config().variant, Variant::Original);
        assert!(wt.stable_on_validation());
        assert!(!wt.epoch_line_recovery());

        let naive = policy_for(Scheme::Naive);
        assert_eq!(naive.tb_variant(), Some(TbVariant::Original));
        assert!(naive.epoch_line_recovery());

        let mdcd = policy_for(Scheme::MdcdOnly);
        assert_eq!(mdcd.tb_variant(), None);
        assert!(!mdcd.epoch_line_recovery());
    }

    #[test]
    fn policy_names_match_variants() {
        for (scheme, name) in [
            (Scheme::Coordinated, "Coordinated"),
            (Scheme::WriteThrough, "WriteThrough"),
            (Scheme::Naive, "Naive"),
            (Scheme::MdcdOnly, "MdcdOnly"),
        ] {
            assert_eq!(policy_for(scheme).name(), name);
        }
    }
}
