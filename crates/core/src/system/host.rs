//! One guarded process: the MDCD engine, optional TB engine, application,
//! stores and acknowledgment bookkeeping of a single process, behind a
//! sans-io `handle(event) -> Vec<HostAction>` surface.
//!
//! A [`ProcessHost`] owns everything that belongs to one process and
//! nothing that belongs to the environment: it never touches clocks, the
//! network, the scheduler, metrics or the trace. Drivers (the simulator's
//! dispatch layer, or the threaded middleware runtime) feed it
//! [`HostEvent`]s and interpret the returned [`HostAction`]s — routing
//! envelopes, scheduling timers, counting metrics and recording trace
//! lines. Action order is the exact trace order of the protocol.

use std::sync::Arc;

use synergy_clocks::LocalTime;
use synergy_des::{EventId, SimDuration, SimTime};
use synergy_mdcd::{
    Action as MdcdAction, CheckpointKind, EngineSnapshot, Event as MdcdEvent, OutboundMessage,
    ProcessRole,
};
use synergy_net::{
    AckTracker, CkptSeqNo, DeviceId, Endpoint, Envelope, MessageBody, MissionId, MsgId, MsgSeqNo,
    ProcessId,
};
use synergy_storage::{StableStore, VolatileStore};
use synergy_tb::{Action as TbAction, ContentsChoice, Event as TbEvent, TbConfig, TbEngine};

use crate::app::{Application, CounterApp};
use crate::config::Scheme;
use crate::payload::{CheckpointPayload, SentRecord};
use crate::roles::RoleEngine;
use crate::system::policy::{policy_for, SchemePolicy};
use crate::system::recovery;

/// Sequence-number namespace for transport acks (disjoint from both the
/// application counter and the engines' control counter).
pub(crate) const ACK_SEQ_BASE: u64 = 1 << 62;

/// The process layout a host participates in. Hosts are topology-agnostic:
/// they address their peers through these ids, never through positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// The (original) active replica; the engines keep broadcasting to
    /// this id even after a takeover.
    pub active: ProcessId,
    /// The shadow replica.
    pub shadow: ProcessId,
    /// The peer component.
    pub peer: ProcessId,
    /// The external device endpoint.
    pub device: DeviceId,
}

impl Topology {
    /// The paper's canonical layout: `P1act`, `P1sdw`, `P2` and one device.
    pub fn canonical() -> Self {
        Topology {
            active: super::P1ACT,
            shadow: super::P1SDW,
            peer: super::P2,
            device: super::DEVICE,
        }
    }
}

/// An input a driver feeds to one host.
#[derive(Debug, Clone)]
pub enum HostEvent {
    /// A network delivery (application, control, or transport ack).
    Deliver(Envelope),
    /// The application produces one message.
    Produce {
        /// Whether the message is external (device-bound, acceptance
        /// tested).
        external: bool,
    },
    /// The TB timer fired, exactly at its local-clock deadline.
    TimerExpired {
        /// The local deadline the timer was set for.
        deadline: LocalTime,
    },
    /// The TB blocking period's local duration elapsed.
    BlockingElapsed,
}

/// An effect the driver must perform on behalf of the host, in order.
#[derive(Debug, Clone)]
pub enum HostAction {
    /// Route a protocol envelope (already counted in the host's send
    /// bookkeeping).
    Send(Envelope),
    /// Route a transport acknowledgment (not a protocol send: no trace
    /// line, no send metric).
    SendAck(Envelope),
    /// One application message was delivered to the local application.
    Delivered,
    /// An acceptance test ran.
    AtPerformed {
        /// Whether it passed.
        pass: bool,
    },
    /// The acceptance test exposed the design fault; the driver must run
    /// software recovery after applying the remaining actions.
    SoftwareErrorDetected,
    /// A volatile checkpoint was saved.
    VolatileSaved {
        /// Which checkpoint kind the engine established.
        kind: CheckpointKind,
    },
    /// A write-through Type-2 checkpoint was committed to stable storage.
    WriteThroughCommitted,
    /// A TB stable write began.
    StableWriteBegun {
        /// `"stable-current"` or `"stable-volatile-copy"`.
        label: &'static str,
        /// The dirty value the TB engine observed at its timer.
        expected_dirty: bool,
        /// A dirty process had no volatile checkpoint and fell back to its
        /// current state (cannot happen through the engines).
        fallback: bool,
    },
    /// The in-flight stable write was replaced with the current state
    /// (dirty bit cleared inside the blocking period).
    StableReplaced,
    /// The in-flight stable write committed.
    StableCommitted {
        /// The committed epoch (`Ndc`).
        ndc: CkptSeqNo,
    },
    /// A blocking period started; the driver schedules its end after the
    /// local-clock `duration`.
    BlockingStarted {
        /// Blocking length on the local clock.
        duration: SimDuration,
    },
    /// (Re)arm the TB timer at a local-clock deadline.
    ScheduleTimer {
        /// The local deadline.
        at: LocalTime,
    },
    /// The TB engine wants the clock fleet resynchronized.
    ResyncRequested,
    /// The unmasked-regime injector corrupted an external payload before
    /// the acceptance test ran.
    RegimeCorrupted {
        /// Whether the (coverage-limited) acceptance test caught it. A miss
        /// is a false negative: the corrupt payload escapes to the device.
        caught: bool,
        /// Byte offset of the flipped byte within the payload.
        offset: usize,
    },
    /// A trace line, interleaved exactly where the protocol emitted it.
    Record {
        /// Trace kind (e.g. `"msg.recv"`).
        kind: &'static str,
        /// Trace detail.
        detail: String,
    },
}

/// One process: application + MDCD engine + optional TB engine + stores.
pub struct ProcessHost {
    /// This process's id.
    pub pid: ProcessId,
    /// The mission (tenant) this host belongs to. Everything the host
    /// sends — protocol envelopes and transport acks — is stamped with
    /// this tag, so any number of hosts can share one transport route.
    /// Single-mission deployments stay on [`MissionId::SOLO`].
    pub mission: MissionId,
    /// The node this process runs on (indexes the clock fleet).
    pub node: usize,
    /// The layout this host addresses its peers through.
    pub topology: Topology,
    /// The guarded application.
    pub app: CounterApp,
    /// The role-specific MDCD engine.
    pub engine: RoleEngine,
    /// The TB engine, when the scheme runs one.
    pub tb: Option<TbEngine>,
    /// Volatile (in-memory) checkpoint store; wiped by crashes.
    pub volatile: VolatileStore,
    /// Stable (crash-surviving) checkpoint store.
    pub stable: StableStore,
    /// Outstanding-acknowledgment tracker (the TB recoverability rule).
    pub acks: AckTracker,
    /// Application messages sent, as reflected by checkpoints.
    pub sent_log: Vec<SentRecord>,
    /// Whether the node is powered (false between a crash and recovery).
    pub up: bool,
    /// Whether the process is permanently out of service (takeover).
    pub dead: bool,
    /// Volatile checkpoint sequence counter.
    pub volatile_seq: u64,
    /// Write-through stable checkpoint sequence counter.
    pub wt_stable_seq: u64,
    /// Transport-ack sequence counter.
    pub ack_sn: u64,
    /// Bumped on recovery to void stale TB timer/blocking events.
    pub tb_epoch: u64,
    /// The pending TB timer event, if the driver tracks one.
    pub timer_event: Option<EventId>,
    /// When the current blocking period started (true time).
    pub blocking_started_at: Option<SimTime>,
    /// Set once this process's state has been installed by a state
    /// transfer (shadow refresh); message-history checks then no longer
    /// apply to it.
    pub synthetic_history: bool,
    /// Application messages delivered since the last volatile checkpoint;
    /// attached to volatile-copy stable writes so recovery can replay
    /// receipts the copied state predates (DESIGN.md §8, decision 5).
    pub recv_log: Vec<Arc<Envelope>>,
    /// Application messages delivered over this host's lifetime.
    pub delivered: u64,
    policy: &'static dyn SchemePolicy,
    /// Mirrors the driver's trace switch: when false, the host neither
    /// formats trace details nor emits [`HostAction::Record`] at all.
    tracing: bool,
    /// Shared snapshot of `sent_log`, built lazily and invalidated on every
    /// append, so back-to-back checkpoints bundle the same buffer.
    sent_snapshot: Option<Arc<[SentRecord]>>,
    /// Decoded image of `volatile.latest()`, kept beside the store so the
    /// adapted-TB dirty copy and volatile rollback reuse the payload the
    /// host just encoded instead of decoding it back out of the bytes.
    volatile_image: Option<CheckpointPayload>,
    /// Reusable serialization buffer for checkpoint encodes.
    scratch: Vec<u8>,
    /// Unmasked-regime injector (bad external payloads + AT coverage),
    /// present only on the original active host of a regime run.
    regime: Option<crate::regime::RegimeInjector>,
}

impl ProcessHost {
    /// Builds the host for `role` at `pid` on `node`. All replicas of one
    /// system must share the application `app`'s seed so they produce
    /// identical streams.
    pub fn new(
        role: ProcessRole,
        pid: ProcessId,
        node: usize,
        topology: Topology,
        scheme: Scheme,
        app: CounterApp,
        tb: Option<TbConfig>,
    ) -> Self {
        let policy = policy_for(scheme);
        ProcessHost {
            pid,
            mission: MissionId::SOLO,
            node,
            topology,
            engine: RoleEngine::new(
                role,
                policy.mdcd_config(),
                topology.active,
                topology.shadow,
                topology.peer,
            ),
            tb: tb.map(TbEngine::new),
            app,
            volatile: VolatileStore::new(),
            stable: StableStore::new(),
            acks: AckTracker::new(),
            sent_log: Vec::new(),
            up: true,
            dead: false,
            volatile_seq: 0,
            wt_stable_seq: 0,
            ack_sn: 0,
            tb_epoch: 0,
            timer_event: None,
            blocking_started_at: None,
            synthetic_history: false,
            recv_log: Vec::new(),
            delivered: 0,
            policy,
            tracing: true,
            sent_snapshot: None,
            volatile_image: None,
            scratch: Vec::new(),
            regime: None,
        }
    }

    /// Installs the unmasked-regime injector (driver-side, at system build).
    pub fn set_regime(&mut self, injector: crate::regime::RegimeInjector) {
        self.regime = Some(injector);
    }

    /// Arms the installed regime injector (the plan's `after` instant
    /// passed); no-op on hosts without one.
    pub fn arm_regime(&mut self) {
        if let Some(inj) = self.regime.as_mut() {
            inj.arm();
        }
    }

    /// Discards volatile checkpoints (node crash, stable restore) together
    /// with the cached decoded image.
    pub(crate) fn wipe_volatile(&mut self) {
        self.volatile.wipe();
        self.volatile_image = None;
    }

    /// The decoded image of the latest volatile checkpoint, if cached.
    pub(crate) fn volatile_image(&self) -> Option<&CheckpointPayload> {
        self.volatile_image.as_ref()
    }

    /// The scheme policy this host runs under.
    pub fn policy(&self) -> &'static dyn SchemePolicy {
        self.policy
    }

    /// Tells the host whether its driver records traces. Disabled hosts
    /// skip every [`HostAction::Record`] (and the formatting behind it).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Assigns the host to a mission (tenant). Call once at construction
    /// time, before any traffic: the tag becomes part of every envelope
    /// the host sends and of every checkpoint's unacked records.
    pub fn set_mission(&mut self, mission: MissionId) {
        self.mission = mission;
    }

    /// A shared view of the sent log, reused until the next append.
    pub fn sent_shared(&mut self) -> Arc<[SentRecord]> {
        self.sent_snapshot
            .get_or_insert_with(|| self.sent_log.as_slice().into())
            .clone()
    }

    /// Appends to the sent log, invalidating the shared snapshot.
    fn push_sent(&mut self, rec: SentRecord) {
        self.sent_log.push(rec);
        self.sent_snapshot = None;
    }

    /// Replaces the sent log wholesale (recovery restores), adopting the
    /// payload's shared buffer as the snapshot.
    pub(crate) fn restore_sent_log(&mut self, sent: &Arc<[SentRecord]>) {
        self.sent_log = sent.to_vec();
        self.sent_snapshot = Some(Arc::clone(sent));
    }

    /// A checkpoint payload of the current state at `now`.
    pub fn current_payload(&mut self, now: SimTime) -> CheckpointPayload {
        let sent = self.sent_shared();
        CheckpointPayload::new(
            self.app.snapshot(),
            self.engine.snapshot(),
            self.acks.unacked_shared(),
            sent,
            now,
        )
    }

    /// Feeds one event; returns the effects the driver must apply, in
    /// order.
    pub fn handle(&mut self, event: HostEvent, now: SimTime) -> Vec<HostAction> {
        let mut out = Vec::new();
        match event {
            HostEvent::Deliver(env) => self.on_deliver(env, now, &mut out),
            HostEvent::Produce { external } => self.on_produce(external, now, &mut out),
            HostEvent::TimerExpired { deadline } => self.on_timer(deadline, now, &mut out),
            HostEvent::BlockingElapsed => {
                let actions = match self.tb.as_mut() {
                    Some(tb) => tb.handle(TbEvent::BlockingElapsed),
                    None => return out,
                };
                self.apply_tb(actions, now, &mut out);
            }
        }
        out
    }

    /// Starts the TB timers (mission bootstrap).
    pub fn start_tb(&mut self, now: SimTime) -> Vec<HostAction> {
        let mut out = Vec::new();
        let actions = match self.tb.as_mut() {
            Some(tb) => tb.start(),
            None => return out,
        };
        self.apply_tb(actions, now, &mut out);
        out
    }

    /// Feeds one MDCD engine event directly. Recovery procedures and
    /// runtime adapters that drive TB outside the host (the threaded
    /// middleware) use this to forward blocking/commit notifications.
    pub fn engine_event(&mut self, event: MdcdEvent, now: SimTime) -> Vec<HostAction> {
        let mut out = Vec::new();
        let actions = self.engine.handle(event);
        self.apply_mdcd(actions, now, &mut out);
        out
    }

    /// Feeds one TB engine event directly (recovery restarts, resync).
    pub(crate) fn tb_event(&mut self, event: TbEvent, now: SimTime) -> Vec<HostAction> {
        let mut out = Vec::new();
        let actions = match self.tb.as_mut() {
            Some(tb) => tb.handle(event),
            None => return out,
        };
        self.apply_tb(actions, now, &mut out);
        out
    }

    /// Send-side bookkeeping for an envelope leaving this host outside the
    /// engine path (recovery resends): the sent log and ack tracking.
    pub fn note_send(&mut self, env: &Envelope) {
        if let (MessageBody::Application { .. }, Endpoint::Process(p)) = (&env.body, env.to) {
            self.push_sent(SentRecord {
                to: p,
                seq: env.id.seq,
            });
            self.acks.on_send(env.clone());
        }
    }

    fn on_deliver(&mut self, env: Envelope, now: SimTime, out: &mut Vec<HostAction>) {
        if let MessageBody::Ack { of } = env.body {
            self.acks.on_ack(of);
            return;
        }
        if self.tracing {
            out.push(HostAction::Record {
                kind: "msg.recv",
                detail: env.to_string(),
            });
        }
        let bit_before = self.engine.checkpoint_bit();
        let actions = self.engine.handle(MdcdEvent::Deliver(env));
        self.apply_mdcd(actions, now, out);
        if bit_before && !self.engine.checkpoint_bit() {
            self.notify_dirty_cleared(now, out);
        }
    }

    fn notify_dirty_cleared(&mut self, now: SimTime, out: &mut Vec<HostAction>) {
        let actions = match self.tb.as_mut() {
            Some(tb) if tb.is_blocking() => tb.handle(TbEvent::DirtyCleared),
            _ => return,
        };
        self.apply_tb(actions, now, out);
    }

    fn on_produce(&mut self, external: bool, now: SimTime, out: &mut Vec<HostAction>) {
        let (mut payload, to): (Vec<u8>, Endpoint) = if external {
            (
                self.app.produce_external(),
                Endpoint::Device(self.topology.device),
            )
        } else {
            let dest = match self.engine.role() {
                // The engine broadcasts internal peer traffic itself.
                ProcessRole::Peer => Endpoint::Process(self.topology.active),
                _ => Endpoint::Process(self.topology.peer),
            };
            (self.app.produce_internal(), dest)
        };
        let mut at_pass = self.app.acceptance_test(&payload);
        // Unmasked-regime injection: corrupt the external payload before
        // the AT runs, then apply the seeded coverage knob. A catch flows
        // through the ordinary `at_pass = false` path (detected takeover);
        // a miss is a false negative and the corruption rides to the device.
        if external && !payload.is_empty() {
            if let Some(inj) = self.regime.as_mut() {
                if inj.draw_corrupt() {
                    let offset = payload.len() - 1;
                    payload[offset] ^= crate::regime::CORRUPTION_MASK;
                    // A miss is a false negative: the coverage knob
                    // overrides the real AT's (correct) rejection and the
                    // corrupt payload rides to the device.
                    let caught = inj.draw_caught();
                    at_pass = !caught;
                    out.push(HostAction::RegimeCorrupted { caught, offset });
                }
            }
        }
        let actions = self.engine.handle(MdcdEvent::AppSend(OutboundMessage {
            to,
            payload,
            external,
            at_pass,
        }));
        self.apply_mdcd(actions, now, out);
    }

    fn on_timer(&mut self, deadline: LocalTime, now: SimTime, out: &mut Vec<HostAction>) {
        let dirty = self.engine.checkpoint_bit();
        let actions = match self.tb.as_mut() {
            // The timer fired exactly at its local deadline.
            Some(tb) => tb.handle(TbEvent::TimerExpired {
                now_local: deadline,
                dirty,
            }),
            None => return,
        };
        if self.tracing {
            out.push(HostAction::Record {
                kind: "tb.timer",
                detail: format!("dirty={} local={deadline}", u8::from(dirty)),
            });
        }
        self.apply_tb(actions, now, out);
    }

    fn apply_mdcd(&mut self, actions: Vec<MdcdAction>, now: SimTime, out: &mut Vec<HostAction>) {
        for action in actions {
            match action {
                MdcdAction::Send(mut env) => {
                    // The engines are mission-blind; the host boundary is
                    // where the tenant tag goes on.
                    env.mission = self.mission;
                    self.note_send(&env);
                    out.push(HostAction::Send(env));
                }
                MdcdAction::TakeCheckpoint { kind, engine } => {
                    self.take_volatile(kind, engine, now, out);
                }
                MdcdAction::DeliverToApp(env) => {
                    let from = env.from();
                    let id = env.id;
                    if let MessageBody::Application { payload, .. } = &env.body {
                        self.app.on_message(from, id.seq, payload);
                        self.recv_log.push(Arc::new(env));
                        self.delivered += 1;
                        out.push(HostAction::Delivered);
                    }
                    // Transport-level acknowledgment back to the sender.
                    self.ack_sn += 1;
                    let ack = Envelope::new(
                        MsgId {
                            from: self.pid,
                            seq: MsgSeqNo(ACK_SEQ_BASE + self.ack_sn),
                        },
                        from,
                        MessageBody::Ack { of: id },
                    )
                    .with_mission(self.mission);
                    out.push(HostAction::SendAck(ack));
                }
                MdcdAction::AtPerformed { pass } => out.push(HostAction::AtPerformed { pass }),
                MdcdAction::SoftwareErrorDetected => {
                    out.push(HostAction::SoftwareErrorDetected);
                }
            }
        }
    }

    fn take_volatile(
        &mut self,
        kind: CheckpointKind,
        engine: EngineSnapshot,
        now: SimTime,
        out: &mut Vec<HostAction>,
    ) {
        self.volatile_seq += 1;
        let sent = self.sent_shared();
        let mut payload =
            CheckpointPayload::new(self.app.snapshot(), engine, Vec::new(), sent, now);
        let ckpt = payload
            .to_checkpoint_with(self.volatile_seq, kind.to_string(), &mut self.scratch)
            .expect("payload encodes");
        self.volatile.save(ckpt);
        // Cache before the write-through path mutates `payload`: the image
        // must mirror exactly what the saved checkpoint decodes to.
        self.volatile_image = Some(payload.clone());
        self.recv_log.clear();
        out.push(HostAction::VolatileSaved { kind });
        // Write-through baseline: Type-2 checkpoints are persisted.
        if self.policy.stable_on_validation() && kind == CheckpointKind::Type2 {
            self.wt_stable_seq += 1;
            payload.unacked = self.acks.unacked_shared();
            let ckpt = payload
                .to_checkpoint_with(self.wt_stable_seq, "stable-type2", &mut self.scratch)
                .expect("payload encodes");
            self.stable
                .begin_write(ckpt)
                .expect("no concurrent WT write");
            self.stable.commit_write().expect("just begun");
            out.push(HostAction::WriteThroughCommitted);
        }
    }

    fn apply_tb(&mut self, actions: Vec<TbAction>, now: SimTime, out: &mut Vec<HostAction>) {
        for action in actions {
            match action {
                TbAction::BeginStableWrite {
                    contents,
                    expected_dirty,
                } => self.begin_stable_write(contents, expected_dirty, now, out),
                TbAction::StartBlocking { duration } => {
                    self.blocking_started_at = Some(now);
                    out.push(HostAction::BlockingStarted { duration });
                    let engine_actions = self.engine.handle(MdcdEvent::BlockingStarted);
                    self.apply_mdcd(engine_actions, now, out);
                    if self.tracing {
                        out.push(HostAction::Record {
                            kind: "tb.blocking",
                            detail: format!("for {duration}"),
                        });
                    }
                }
                TbAction::ReplaceWithCurrentState => {
                    let payload = self.current_payload(self.blocking_started_at.unwrap_or(now));
                    let seq = self.stable.in_progress().map_or(1, |c| c.seq());
                    let ckpt = payload
                        .to_checkpoint_with(seq, "stable-replaced", &mut self.scratch)
                        .expect("payload encodes");
                    self.stable
                        .replace_in_progress(ckpt)
                        .expect("write in progress during blocking");
                    out.push(HostAction::StableReplaced);
                }
                TbAction::CommitStableWrite { ndc } => {
                    self.blocking_started_at = None;
                    self.stable.commit_write().expect("write in progress");
                    out.push(HostAction::StableCommitted { ndc });
                    let mut engine_actions = self
                        .engine
                        .handle(MdcdEvent::StableCheckpointCommitted(ndc));
                    engine_actions.extend(self.engine.handle(MdcdEvent::BlockingEnded));
                    self.apply_mdcd(engine_actions, now, out);
                }
                TbAction::ScheduleTimer { at } => out.push(HostAction::ScheduleTimer { at }),
                TbAction::RequestResync => out.push(HostAction::ResyncRequested),
            }
        }
    }

    fn begin_stable_write(
        &mut self,
        contents: ContentsChoice,
        expected_dirty: bool,
        now: SimTime,
        out: &mut Vec<HostAction>,
    ) {
        let (payload, fallback) = match contents {
            ContentsChoice::CurrentState => (self.current_payload(now), false),
            ContentsChoice::VolatileCopy => match (&self.volatile_image, self.volatile.latest()) {
                // Cached image: the dirty copy is refcount bumps, no decode.
                (Some(img), Some(_)) => (
                    recovery::amend_volatile_copy(img.clone(), &self.acks, &self.recv_log),
                    false,
                ),
                (None, Some(vol)) => (
                    recovery::volatile_copy_payload(vol, &self.acks, &self.recv_log),
                    false,
                ),
                // Defensive: a dirty bit without a volatile checkpoint
                // (cannot happen through the engines).
                _ => (self.current_payload(now), true),
            },
        };
        let seq = self.tb.as_ref().map_or(0, |tb| tb.ndc().0) + 1;
        let label = match contents {
            ContentsChoice::CurrentState => "stable-current",
            ContentsChoice::VolatileCopy => "stable-volatile-copy",
        };
        let ckpt = payload
            .to_checkpoint_with(seq, label, &mut self.scratch)
            .expect("payload encodes");
        self.stable
            .begin_write(ckpt)
            .expect("no overlapping TB writes");
        out.push(HostAction::StableWriteBegun {
            label,
            expected_dirty,
            fallback,
        });
    }
}
