//! Mission-level tests of the assembled system (all three layers).

use super::*;
use crate::config::{Scheme, SystemConfig};

fn base() -> crate::config::SystemConfigBuilder {
    SystemConfig::builder()
        .seed(7)
        .duration_secs(120.0)
        .internal_rate_per_min(60.0)
        .external_rate_per_min(6.0)
}

#[test]
fn fault_free_coordinated_run_is_clean() {
    let outcome = Mission::new(base().scheme(Scheme::Coordinated).build()).run();
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(outcome.metrics.stable_commits > 0, "TB must checkpoint");
    assert!(
        outcome.metrics.at_runs > 0,
        "external messages must be tested"
    );
    assert_eq!(outcome.metrics.at_failures, 0);
    assert!(outcome.device_messages > 0);
    assert!(!outcome.shadow_promoted);
}

#[test]
fn software_fault_triggers_takeover_and_recovers() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .software_fault_at_secs(40.0)
            .build(),
    )
    .run();
    assert!(outcome.shadow_promoted, "shadow must take over");
    assert_eq!(outcome.metrics.software_recoveries, 1);
    assert!(outcome.metrics.at_failures >= 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(
        outcome.device_messages > 0,
        "external service continues after takeover"
    );
}

#[test]
fn hardware_fault_recovers_consistently_under_coordination() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .hardware_fault_at_secs(70.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    let distances = outcome.metrics.hardware_rollback_distances();
    assert_eq!(distances.len(), 3, "all three processes roll back");
    for d in distances {
        assert!(d < 120.0, "rollback bounded by mission length");
    }
}

#[test]
fn naive_combination_violates_validity() {
    // Find a seed where the fault lands while P2 is dirty — with a
    // 60/min internal rate P2 is dirty most of the time.
    let mut violated = false;
    for seed in 0..10 {
        let outcome = Mission::new(
            base()
                .seed(seed)
                .scheme(Scheme::Naive)
                .hardware_fault_at_secs(71.0)
                .build(),
        )
        .run();
        if !outcome.verdicts.of("validity-self").is_empty() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "naive combination must exhibit the Fig. 4(a) validity loss"
    );
}

#[test]
fn write_through_recovers_but_more_expensively() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::WriteThrough)
            .hardware_fault_at_secs(70.0)
            .build(),
    )
    .run();
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(outcome.metrics.stable_commits > 0);
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed| {
        let o = Mission::new(
            base()
                .seed(seed)
                .scheme(Scheme::Coordinated)
                .hardware_fault_at_secs(50.0)
                .software_fault_at_secs(90.0)
                .build(),
        )
        .run();
        (
            o.metrics.messages_sent,
            o.metrics.stable_commits,
            o.device_messages,
            o.metrics.hardware_rollback_distances(),
        )
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

#[test]
fn coordinated_beats_write_through_on_rollback_distance() {
    // The headline comparison (Fig. 7), run below the model's crossover
    // interval Δ < 2/(λi+λv): internal messages 60/h, validations
    // ~2+/min, Δ = 2s.
    let mean = |scheme| {
        let mut total = 0.0;
        let mut n = 0u32;
        for seed in 0..8 {
            let o = Mission::new(
                SystemConfig::builder()
                    .seed(seed)
                    .scheme(scheme)
                    .duration_secs(400.0)
                    .internal_rate_per_min(1.0)
                    .external_rate_per_min(2.0)
                    .tb_interval_secs(2.0)
                    .hardware_fault_at_secs(310.0)
                    .trace(false)
                    .build(),
            )
            .run();
            for d in o.metrics.hardware_rollback_distances() {
                total += d;
                n += 1;
            }
        }
        total / f64::from(n)
    };
    let co = mean(Scheme::Coordinated);
    let wt = mean(Scheme::WriteThrough);
    assert!(
        co < wt,
        "coordinated ({co:.1}s) must beat write-through ({wt:.1}s)"
    );
}

#[test]
fn software_then_hardware_fault_sequence_survives() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .software_fault_at_secs(30.0)
            .hardware_fault_at_secs(80.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.software_recoveries, 1);
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
}

#[test]
fn crash_of_each_node_is_survivable() {
    for node in 0..3usize {
        let outcome = Mission::new(
            base()
                .scheme(Scheme::Coordinated)
                .hardware_fault(crate::faults::HardwareFault {
                    at: SimTime::from_secs_f64(60.0),
                    node,
                })
                .build(),
        )
        .run();
        assert!(
            outcome.verdicts.all_hold(),
            "node {node}: {:?}",
            outcome.verdicts.violations
        );
        assert_eq!(outcome.metrics.hardware_recoveries, 1, "node {node}");
    }
}

#[test]
fn volatile_image_matches_decoded_checkpoint() {
    // The host-side cache must mirror exactly what the stored bytes decode
    // to — the adapted-TB dirty copy and volatile rollback depend on it.
    let mut system = System::new(base().scheme(Scheme::Coordinated).trace(false).build());
    system.run();
    let mut images_checked = 0;
    for host in &system.hosts {
        let (Some(img), Some(ckpt)) = (host.volatile_image(), host.volatile.latest()) else {
            continue;
        };
        let decoded =
            crate::payload::CheckpointPayload::from_checkpoint(ckpt).expect("volatile decodes");
        assert_eq!(img, &decoded, "cached image diverged for {}", host.pid);
        images_checked += 1;
    }
    assert!(images_checked > 0, "no volatile checkpoints were cached");
}

// ---------------------------------------------------------------------------
// Unmasked-regime lattice: one mission-level test per regime, classified by
// `run_regime_mission` so the full evidence pipeline (injection, counters,
// oracle diff, verdict) is exercised, not just the classifier.
// ---------------------------------------------------------------------------

#[test]
fn regime_bad_messages_full_coverage_is_detected_and_recovered() {
    let cfg = base()
        .scheme(Scheme::Coordinated)
        .bad_messages(40.0, 1.0)
        .build();
    let report = crate::regime::run_regime_mission(&cfg);
    assert!(report.at_catches >= 1, "AT must catch corrupt externals");
    assert_eq!(report.at_escapes, 0, "full coverage leaves no escapes");
    assert!(report.escapes.is_empty());
    assert_eq!(
        report.verdict,
        crate::regime::RegimeVerdict::DetectedAndRecovered,
        "{report:?}"
    );
    assert!(
        report.detection_latency_secs.is_some(),
        "first catch must stamp a latency"
    );
}

#[test]
fn regime_zero_coverage_escapes_are_counted_and_localized() {
    // Coverage 0 is the pure false-negative regime: every corrupt payload
    // slips past the AT and reaches the device. The oracle diff must count
    // each one and pin it to the corrupted byte.
    let cfg = base()
        .scheme(Scheme::Coordinated)
        .bad_messages(40.0, 0.5)
        .at_coverage(0.0)
        .build();
    let report = crate::regime::run_regime_mission(&cfg);
    assert!(report.at_escapes >= 1, "coverage 0 must leak: {report:?}");
    assert_eq!(report.at_catches, 0);
    assert_eq!(
        report.escapes.len(),
        report.at_escapes as usize,
        "oracle diff must localize exactly the escaped payloads: {report:?}"
    );
    assert_eq!(
        report.verdict,
        crate::regime::RegimeVerdict::DocumentedEscape,
        "{report:?}"
    );
    let first = report.first_escape().expect("non-empty escapes");
    assert_eq!(
        first.offset, 16,
        "corruption flips the checksum byte at offset 16"
    );
}

#[test]
fn regime_partial_coverage_filters_takeover_noise_from_escapes() {
    // A caught corruption triggers a takeover, after which the observed
    // trajectory legitimately diverges from the fault-free oracle. Those
    // diffs must not masquerade as escapes: only records carrying the
    // single-byte corruption signature count.
    // With seed 7 the first drawn corruption is caught (empirically), so the
    // oracle diff sees only post-takeover retiming — which must be filtered.
    let cfg = base()
        .scheme(Scheme::Coordinated)
        .bad_messages(40.0, 0.5)
        .at_coverage(0.4)
        .build();
    let report = crate::regime::run_regime_mission(&cfg);
    assert!(report.at_catches >= 1, "{report:?}");
    assert_eq!(report.at_escapes, 0, "{report:?}");
    assert!(
        report.escapes.is_empty(),
        "takeover retiming must not count as escapes: {report:?}"
    );
    assert_eq!(
        report.verdict,
        crate::regime::RegimeVerdict::DetectedAndRecovered,
        "{report:?}"
    );
}

#[test]
fn regime_resync_violation_is_flagged_not_recovered() {
    let cfg = base()
        .scheme(Scheme::Coordinated)
        .resync_violation(40.0, synergy_des::SimDuration::from_micros(500), 1)
        .build();
    let report = crate::regime::run_regime_mission(&cfg);
    assert!(report.resync_violations >= 1, "{report:?}");
    assert!(report.violations >= 1, "checker must flag the delta bound");
    assert_eq!(
        report.verdict,
        crate::regime::RegimeVerdict::DetectedAndFlagged,
        "{report:?}"
    );
}

#[test]
fn regime_resync_violation_makes_epoch_line_provably_stale() {
    // The violated δ bound followed by a hardware recovery: the epoch line
    // is computed under a broken clock envelope and must be flagged stale.
    let cfg = base()
        .scheme(Scheme::Coordinated)
        .resync_violation(40.0, synergy_des::SimDuration::from_micros(500), 1)
        .hardware_fault_at_secs(60.0)
        .build();
    let report = crate::regime::run_regime_mission(&cfg);
    assert!(report.resync_violations >= 1, "{report:?}");
    assert!(report.stale_epoch_lines >= 1, "{report:?}");
    assert_eq!(
        report.verdict,
        crate::regime::RegimeVerdict::DetectedAndFlagged,
        "{report:?}"
    );
}

#[test]
fn regime_byzantine_flip_surfaces_as_documented_escape() {
    let cfg = base()
        .scheme(Scheme::Coordinated)
        .byzantine_flip(40.0, 0)
        .hardware_fault(crate::faults::HardwareFault::on(
            crate::NodeId::P1Act,
            synergy_des::SimTime::from_secs_f64(60.0),
        ))
        .build();
    let report = crate::regime::run_regime_mission(&cfg);
    assert_eq!(report.byz_corruptions, 1, "{report:?}");
    assert!(
        !report.escapes.is_empty(),
        "value flip behind a valid CRC must surface in the oracle diff: {report:?}"
    );
    assert_eq!(
        report.verdict,
        crate::regime::RegimeVerdict::DocumentedEscape,
        "{report:?}"
    );
}

#[test]
fn regime_reports_are_deterministic_per_seed() {
    for seed in [3u64, 11, 29] {
        let cfg = base()
            .seed(seed)
            .scheme(Scheme::Coordinated)
            .bad_messages(40.0, 0.5)
            .at_coverage(0.5)
            .build();
        let a = crate::regime::run_regime_mission(&cfg);
        let b = crate::regime::run_regime_mission(&cfg);
        assert_eq!(a, b, "seed {seed}: regime runs must be reproducible");
    }
}

#[test]
fn regime_masked_plan_stays_byte_identical_to_baseline() {
    // A plan with rate 0 arms the injector but corrupts nothing; the device
    // stream must match the completely unplanned baseline byte for byte.
    let planned = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .bad_messages(40.0, 0.0)
            .build(),
    )
    .run();
    let baseline = Mission::new(base().scheme(Scheme::Coordinated).build()).run();
    assert_eq!(planned.device_stream, baseline.device_stream);
}
