//! Mission-level tests of the assembled system (all three layers).

use super::*;
use crate::config::{Scheme, SystemConfig};

fn base() -> crate::config::SystemConfigBuilder {
    SystemConfig::builder()
        .seed(7)
        .duration_secs(120.0)
        .internal_rate_per_min(60.0)
        .external_rate_per_min(6.0)
}

#[test]
fn fault_free_coordinated_run_is_clean() {
    let outcome = Mission::new(base().scheme(Scheme::Coordinated).build()).run();
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(outcome.metrics.stable_commits > 0, "TB must checkpoint");
    assert!(
        outcome.metrics.at_runs > 0,
        "external messages must be tested"
    );
    assert_eq!(outcome.metrics.at_failures, 0);
    assert!(outcome.device_messages > 0);
    assert!(!outcome.shadow_promoted);
}

#[test]
fn software_fault_triggers_takeover_and_recovers() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .software_fault_at_secs(40.0)
            .build(),
    )
    .run();
    assert!(outcome.shadow_promoted, "shadow must take over");
    assert_eq!(outcome.metrics.software_recoveries, 1);
    assert!(outcome.metrics.at_failures >= 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(
        outcome.device_messages > 0,
        "external service continues after takeover"
    );
}

#[test]
fn hardware_fault_recovers_consistently_under_coordination() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .hardware_fault_at_secs(70.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    let distances = outcome.metrics.hardware_rollback_distances();
    assert_eq!(distances.len(), 3, "all three processes roll back");
    for d in distances {
        assert!(d < 120.0, "rollback bounded by mission length");
    }
}

#[test]
fn naive_combination_violates_validity() {
    // Find a seed where the fault lands while P2 is dirty — with a
    // 60/min internal rate P2 is dirty most of the time.
    let mut violated = false;
    for seed in 0..10 {
        let outcome = Mission::new(
            base()
                .seed(seed)
                .scheme(Scheme::Naive)
                .hardware_fault_at_secs(71.0)
                .build(),
        )
        .run();
        if !outcome.verdicts.of("validity-self").is_empty() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "naive combination must exhibit the Fig. 4(a) validity loss"
    );
}

#[test]
fn write_through_recovers_but_more_expensively() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::WriteThrough)
            .hardware_fault_at_secs(70.0)
            .build(),
    )
    .run();
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(outcome.metrics.stable_commits > 0);
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed| {
        let o = Mission::new(
            base()
                .seed(seed)
                .scheme(Scheme::Coordinated)
                .hardware_fault_at_secs(50.0)
                .software_fault_at_secs(90.0)
                .build(),
        )
        .run();
        (
            o.metrics.messages_sent,
            o.metrics.stable_commits,
            o.device_messages,
            o.metrics.hardware_rollback_distances(),
        )
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

#[test]
fn coordinated_beats_write_through_on_rollback_distance() {
    // The headline comparison (Fig. 7), run below the model's crossover
    // interval Δ < 2/(λi+λv): internal messages 60/h, validations
    // ~2+/min, Δ = 2s.
    let mean = |scheme| {
        let mut total = 0.0;
        let mut n = 0u32;
        for seed in 0..8 {
            let o = Mission::new(
                SystemConfig::builder()
                    .seed(seed)
                    .scheme(scheme)
                    .duration_secs(400.0)
                    .internal_rate_per_min(1.0)
                    .external_rate_per_min(2.0)
                    .tb_interval_secs(2.0)
                    .hardware_fault_at_secs(310.0)
                    .trace(false)
                    .build(),
            )
            .run();
            for d in o.metrics.hardware_rollback_distances() {
                total += d;
                n += 1;
            }
        }
        total / f64::from(n)
    };
    let co = mean(Scheme::Coordinated);
    let wt = mean(Scheme::WriteThrough);
    assert!(
        co < wt,
        "coordinated ({co:.1}s) must beat write-through ({wt:.1}s)"
    );
}

#[test]
fn software_then_hardware_fault_sequence_survives() {
    let outcome = Mission::new(
        base()
            .scheme(Scheme::Coordinated)
            .software_fault_at_secs(30.0)
            .hardware_fault_at_secs(80.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.software_recoveries, 1);
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
}

#[test]
fn crash_of_each_node_is_survivable() {
    for node in 0..3usize {
        let outcome = Mission::new(
            base()
                .scheme(Scheme::Coordinated)
                .hardware_fault(crate::faults::HardwareFault {
                    at: SimTime::from_secs_f64(60.0),
                    node,
                })
                .build(),
        )
        .run();
        assert!(
            outcome.verdicts.all_hold(),
            "node {node}: {:?}",
            outcome.verdicts.violations
        );
        assert_eq!(outcome.metrics.hardware_recoveries, 1, "node {node}");
    }
}

#[test]
fn volatile_image_matches_decoded_checkpoint() {
    // The host-side cache must mirror exactly what the stored bytes decode
    // to — the adapted-TB dirty copy and volatile rollback depend on it.
    let mut system = System::new(base().scheme(Scheme::Coordinated).trace(false).build());
    system.run();
    let mut images_checked = 0;
    for host in &system.hosts {
        let (Some(img), Some(ckpt)) = (host.volatile_image(), host.volatile.latest()) else {
            continue;
        };
        let decoded =
            crate::payload::CheckpointPayload::from_checkpoint(ckpt).expect("volatile decodes");
        assert_eq!(img, &decoded, "cached image diverged for {}", host.pid);
        images_checked += 1;
    }
    assert!(images_checked > 0, "no volatile checkpoints were cached");
}
