//! Global-state consistency and recoverability checkers.
//!
//! These encode the paper's correctness properties (§2.1) as machine checks
//! over the set of *restored* checkpoint payloads at a hardware recovery:
//!
//! * **Consistency** — a message reflected as received must be reflected as
//!   sent by its sender;
//! * **Recoverability** — a message reflected as sent must be reflected as
//!   received or be restorable (present in the sender's saved unacked set);
//! * **Validity (self)** — restored control states must be
//!   non-contaminated: every restored dirty / pseudo-dirty bit is 0, so a
//!   subsequent software error remains recoverable (this is what the naive
//!   combination breaks, Fig. 4(a));
//! * **Validity (ground truth)** — no restored state reflects a message
//!   from the active process that was never covered by a successful
//!   acceptance test.

use core::fmt;

use synergy_mdcd::ProcessRole;
use synergy_net::{MessageBody, MsgSeqNo, ProcessId};

use crate::app::CounterApp;
use crate::payload::CheckpointPayload;

/// One property violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which property was violated.
    pub property: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.property, self.detail)
    }
}

/// The accumulated verdicts of every check run during a mission.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Verdicts {
    /// Violations found, in discovery order.
    pub violations: Vec<Violation>,
    /// How many global checks were executed.
    pub checks_run: u64,
    /// Unmasked-regime evidence: corrupt external payloads the acceptance
    /// test caught (each triggers detected takeover, not silent masking).
    pub at_catches: u64,
    /// Corrupt external payloads the acceptance test missed (seeded false
    /// negatives); each one reaches the device.
    pub at_escapes: u64,
    /// Resynchronizations that left the clock fleet outside the δ bound.
    pub resync_violations: u64,
    /// Hardware recoveries whose epoch line was computed while the clock
    /// bound was violated (the line is provably stale).
    pub stale_epoch_lines: u64,
    /// Byzantine-lite valid-CRC checkpoint corruptions injected.
    pub byz_corruptions: u64,
    /// Escapes localized against an oracle device stream, in stream order.
    pub escapes: Vec<crate::regime::EscapeRecord>,
}

impl Verdicts {
    /// Whether every executed check held.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a specific property.
    pub fn of(&self, property: &str) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.property == property)
            .collect()
    }

    /// Merges another set of verdicts into this one (used both within a run
    /// and to accumulate parallel seed sweeps).
    pub fn merge(&mut self, other: Verdicts) {
        self.violations.extend(other.violations);
        self.checks_run += other.checks_run;
        self.at_catches += other.at_catches;
        self.at_escapes += other.at_escapes;
        self.resync_violations += other.resync_violations;
        self.stale_epoch_lines += other.stale_epoch_lines;
        self.byz_corruptions += other.byz_corruptions;
        self.escapes.extend(other.escapes);
    }
}

/// A restored process state to check: role, payload, and role metadata.
#[derive(Clone, Debug)]
pub struct RestoredState {
    /// The process.
    pub pid: ProcessId,
    /// Its role in the guarded configuration.
    pub role: ProcessRole,
    /// Whether this process's application state was (ever) installed by a
    /// state transfer rather than built purely from messages — set when the
    /// middleware re-initializes the shadow from the restored active after
    /// a global rollback. Message-history checks do not apply to such
    /// states.
    pub synthetic_history: bool,
    /// The payload it restored.
    pub payload: CheckpointPayload,
}

/// Checks validity-concerned global consistency and recoverability over a
/// set of restored states.
#[derive(Clone, Debug)]
pub struct GlobalChecker {
    /// The active process (its sequence numbers are the validated domain).
    pub active: ProcessId,
}

impl GlobalChecker {
    /// Creates a checker for a system whose active process is `active`.
    pub fn new(active: ProcessId) -> Self {
        GlobalChecker { active }
    }

    /// Runs every check against `states`, given the ground-truth highest
    /// validated sequence number of the active process.
    pub fn check(&self, states: &[RestoredState], global_validated: MsgSeqNo) -> Verdicts {
        let mut v = Verdicts {
            checks_run: 1,
            ..Verdicts::default()
        };
        self.check_consistency(states, &mut v);
        self.check_recoverability(states, &mut v);
        self.check_self_validity(states, &mut v);
        self.check_ground_truth_validity(states, global_validated, &mut v);
        v
    }

    /// Whether message-history checks apply to this process. The shadow's
    /// inbound traffic consists of replicated copies of the peer's
    /// broadcasts, regenerable from the active's stream by construction;
    /// after a global rollback the middleware re-initializes the shadow
    /// from the restored active state (a state transfer), making its
    /// message history synthetic. The paper's validity-concerned
    /// properties therefore bind the active↔peer relationship, while the
    /// shadow is held to its dirty-bit validity (`validity-self`) and the
    /// suppressed-log mechanism exercised at software recovery.
    fn history_checked(&self, state: &RestoredState) -> bool {
        state.role != ProcessRole::Shadow && !state.synthetic_history
    }

    /// Consistency: received ⇒ sent.
    fn check_consistency(&self, states: &[RestoredState], v: &mut Verdicts) {
        for receiver in states.iter().filter(|s| self.history_checked(s)) {
            let Some(app) = CounterApp::decode_state(&receiver.payload.app) else {
                v.violations.push(Violation {
                    property: "consistency",
                    detail: format!("{}: undecodable app state", receiver.pid),
                });
                continue;
            };
            for receipt in &app.received {
                let Some(sender) = states.iter().find(|s| s.pid == receipt.from) else {
                    continue; // external sender not part of the snapshot
                };
                let reflected = sender
                    .payload
                    .sent
                    .iter()
                    .any(|s| s.to == receiver.pid && s.seq == receipt.seq);
                if !reflected {
                    v.violations.push(Violation {
                        property: "consistency",
                        detail: format!(
                            "{} reflects {}:{} as received but {}'s state does not reflect it as sent",
                            receiver.pid, receipt.from, receipt.seq, sender.pid
                        ),
                    });
                }
            }
        }
    }

    /// Recoverability: sent ⇒ received or restorable.
    fn check_recoverability(&self, states: &[RestoredState], v: &mut Verdicts) {
        for sender in states {
            for sent in sender.payload.sent.iter() {
                let Some(receiver) = states.iter().find(|s| s.pid == sent.to) else {
                    continue;
                };
                if !self.history_checked(receiver) {
                    continue;
                }
                let Some(app) = CounterApp::decode_state(&receiver.payload.app) else {
                    continue; // reported by the consistency check already
                };
                let received = app
                    .received
                    .iter()
                    .any(|r| r.from == sender.pid && r.seq == sent.seq);
                let restorable = sender
                    .payload
                    .unacked
                    .iter()
                    .any(|e| e.id.from == sender.pid && e.id.seq == sent.seq);
                if !received && !restorable {
                    v.violations.push(Violation {
                        property: "recoverability",
                        detail: format!(
                            "{} reflects {} -> {} as sent; not received and not restorable",
                            sender.pid, sent.seq, sent.to
                        ),
                    });
                }
            }
        }
    }

    /// Restored control states must be non-contaminated so a later software
    /// error remains recoverable (Fig. 4(a) is the counterexample).
    fn check_self_validity(&self, states: &[RestoredState], v: &mut Verdicts) {
        for s in states {
            let snap = &s.payload.engine;
            let contaminated = match s.role {
                // P1act's actual dirty bit is constantly 1; its pseudo bit
                // is the relevant confidence indicator.
                ProcessRole::Active => snap.pseudo_dirty.unwrap_or(false),
                ProcessRole::Shadow | ProcessRole::Peer => snap.dirty,
            };
            if contaminated {
                v.violations.push(Violation {
                    property: "validity-self",
                    detail: format!(
                        "{} ({}) restored a potentially contaminated state: a subsequent \
                         software error could not be recovered",
                        s.pid, s.role
                    ),
                });
            }
        }
    }

    /// No restored state may reflect an unvalidated message from the active
    /// process.
    fn check_ground_truth_validity(
        &self,
        states: &[RestoredState],
        global_validated: MsgSeqNo,
        v: &mut Verdicts,
    ) {
        for s in states {
            if s.pid == self.active {
                continue;
            }
            let Some(app) = CounterApp::decode_state(&s.payload.app) else {
                continue;
            };
            for receipt in &app.received {
                if receipt.from == self.active && receipt.seq > global_validated {
                    v.violations.push(Violation {
                        property: "validity-ground-truth",
                        detail: format!(
                            "{} restored a state reflecting unvalidated message {}:{} \
                             (highest validated: {})",
                            s.pid, receipt.from, receipt.seq, global_validated
                        ),
                    });
                }
            }
        }
    }
}

/// Extracts the highest validated sequence number from a `passed_AT`
/// broadcast body (driver-side ground-truth tracking helper).
pub fn validated_seq_of(body: &MessageBody) -> Option<MsgSeqNo> {
    match body {
        MessageBody::PassedAt { msg_sn, .. } => Some(*msg_sn),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Application;
    use crate::payload::SentRecord;
    use synergy_des::SimTime;
    use synergy_mdcd::EngineSnapshot;

    const ACT: ProcessId = ProcessId(1);
    const SDW: ProcessId = ProcessId(2);
    const PEER: ProcessId = ProcessId(3);

    fn state(
        pid: ProcessId,
        role: ProcessRole,
        received: Vec<(ProcessId, u64)>,
        sent: Vec<(ProcessId, u64)>,
        dirty: bool,
    ) -> RestoredState {
        let mut app = CounterApp::new(0);
        for (from, seq) in received {
            app.on_message(from, MsgSeqNo(seq), &[1]);
        }
        let engine = EngineSnapshot {
            dirty,
            pseudo_dirty: if role == ProcessRole::Active {
                Some(dirty)
            } else {
                None
            },
            ..EngineSnapshot::default()
        };
        RestoredState {
            pid,
            role,
            synthetic_history: false,
            payload: CheckpointPayload::new(
                app.snapshot(),
                engine,
                Vec::new(),
                sent.into_iter()
                    .map(|(to, seq)| SentRecord {
                        to,
                        seq: MsgSeqNo(seq),
                    })
                    .collect::<Vec<_>>(),
                SimTime::ZERO,
            ),
        }
    }

    fn checker() -> GlobalChecker {
        GlobalChecker::new(ACT)
    }

    #[test]
    fn clean_matching_snapshot_passes() {
        let states = vec![
            state(ACT, ProcessRole::Active, vec![], vec![(PEER, 1)], false),
            state(SDW, ProcessRole::Shadow, vec![], vec![], false),
            state(PEER, ProcessRole::Peer, vec![(ACT, 1)], vec![], false),
        ];
        let v = checker().check(&states, MsgSeqNo(1));
        assert!(v.all_hold(), "{:?}", v.violations);
        assert_eq!(v.checks_run, 1);
    }

    #[test]
    fn orphan_receipt_violates_consistency() {
        let states = vec![
            state(ACT, ProcessRole::Active, vec![], vec![], false),
            state(SDW, ProcessRole::Shadow, vec![], vec![], false),
            // PEER claims to have received ACT:5, ACT never reflects it.
            state(PEER, ProcessRole::Peer, vec![(ACT, 5)], vec![], false),
        ];
        let v = checker().check(&states, MsgSeqNo(9));
        assert_eq!(v.of("consistency").len(), 1);
    }

    #[test]
    fn lost_unrestorable_message_violates_recoverability() {
        let states = vec![
            state(ACT, ProcessRole::Active, vec![], vec![(PEER, 3)], false),
            state(SDW, ProcessRole::Shadow, vec![], vec![], false),
            state(PEER, ProcessRole::Peer, vec![], vec![], false),
        ];
        let v = checker().check(&states, MsgSeqNo(9));
        assert_eq!(v.of("recoverability").len(), 1);
    }

    #[test]
    fn unacked_copy_restores_recoverability() {
        let mut sender = state(ACT, ProcessRole::Active, vec![], vec![(PEER, 3)], false);
        sender
            .payload
            .unacked
            .push(std::sync::Arc::new(synergy_net::Envelope::new(
                synergy_net::MsgId {
                    from: ACT,
                    seq: MsgSeqNo(3),
                },
                PEER,
                MessageBody::Application {
                    payload: vec![],
                    dirty: true,
                },
            )));
        let states = vec![
            sender,
            state(SDW, ProcessRole::Shadow, vec![], vec![], false),
            state(PEER, ProcessRole::Peer, vec![], vec![], false),
        ];
        let v = checker().check(&states, MsgSeqNo(9));
        assert!(v.of("recoverability").is_empty());
    }

    #[test]
    fn dirty_restored_state_violates_self_validity() {
        let states = vec![
            state(ACT, ProcessRole::Active, vec![], vec![], false),
            state(SDW, ProcessRole::Shadow, vec![], vec![], false),
            state(PEER, ProcessRole::Peer, vec![], vec![], true),
        ];
        let v = checker().check(&states, MsgSeqNo(0));
        assert_eq!(v.of("validity-self").len(), 1);
    }

    #[test]
    fn unvalidated_receipt_violates_ground_truth() {
        let states = vec![
            state(ACT, ProcessRole::Active, vec![], vec![(PEER, 7)], false),
            state(SDW, ProcessRole::Shadow, vec![], vec![], false),
            state(PEER, ProcessRole::Peer, vec![(ACT, 7)], vec![], false),
        ];
        // Only seqs <= 5 were ever validated.
        let v = checker().check(&states, MsgSeqNo(5));
        assert_eq!(v.of("validity-ground-truth").len(), 1);
    }

    #[test]
    fn shadow_message_history_is_exempt() {
        // After a state transfer the shadow's receipts are synthetic; only
        // its dirty bit is checked.
        let states = vec![
            state(ACT, ProcessRole::Active, vec![], vec![], false),
            state(SDW, ProcessRole::Shadow, vec![(PEER, 9)], vec![], false),
            state(PEER, ProcessRole::Peer, vec![], vec![(SDW, 3)], false),
        ];
        let v = checker().check(&states, MsgSeqNo(9));
        assert!(v.all_hold(), "{:?}", v.violations);
    }

    #[test]
    fn verdict_merge_accumulates() {
        let mut a = Verdicts {
            checks_run: 1,
            at_catches: 2,
            at_escapes: 1,
            ..Verdicts::default()
        };
        let b = Verdicts {
            checks_run: 2,
            violations: vec![Violation {
                property: "consistency",
                detail: "x".into(),
            }],
            ..Verdicts::default()
        };
        a.merge(b);
        assert_eq!(a.checks_run, 3);
        assert!(!a.all_hold());
        assert_eq!(a.at_catches, 2);
        assert_eq!(a.at_escapes, 1);
    }

    #[test]
    fn verdict_merge_accumulates_regime_counters_across_sweeps() {
        // Model a parallel seed sweep: each seed yields its own Verdicts and
        // the sweep driver folds them together with merge().
        use crate::regime::EscapeRecord;
        let per_seed = [
            Verdicts {
                at_catches: 3,
                resync_violations: 1,
                ..Verdicts::default()
            },
            Verdicts {
                at_escapes: 2,
                stale_epoch_lines: 1,
                byz_corruptions: 1,
                escapes: vec![EscapeRecord {
                    index: 5,
                    offset: 16,
                }],
                ..Verdicts::default()
            },
            Verdicts {
                at_catches: 1,
                at_escapes: 1,
                escapes: vec![EscapeRecord {
                    index: 0,
                    offset: 8,
                }],
                ..Verdicts::default()
            },
        ];
        let mut total = Verdicts::default();
        for v in per_seed {
            total.merge(v);
        }
        assert_eq!(total.at_catches, 4);
        assert_eq!(total.at_escapes, 3);
        assert_eq!(total.resync_violations, 1);
        assert_eq!(total.stale_epoch_lines, 1);
        assert_eq!(total.byz_corruptions, 1);
        assert_eq!(
            total.escapes,
            vec![
                EscapeRecord {
                    index: 5,
                    offset: 16
                },
                EscapeRecord {
                    index: 0,
                    offset: 8
                },
            ]
        );
    }

    #[test]
    fn validated_seq_extraction() {
        let body = MessageBody::PassedAt {
            msg_sn: MsgSeqNo(4),
            ndc: synergy_net::CkptSeqNo(1),
        };
        assert_eq!(validated_seq_of(&body), Some(MsgSeqNo(4)));
        assert_eq!(
            validated_seq_of(&MessageBody::External { payload: vec![] }),
            None
        );
    }
}
