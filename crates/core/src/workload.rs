//! Poisson workload generation.

use synergy_des::{DetRng, SimDuration};

/// A Poisson arrival stream: exponential inter-arrival times at a fixed
/// rate, drawn from a dedicated deterministic stream.
///
/// # Example
///
/// ```rust
/// use synergy_des::DetRng;
/// use synergy::workload::ArrivalStream;
///
/// let mut arrivals = ArrivalStream::new(2.0, DetRng::new(1).stream("w"));
/// let gap = arrivals.next_interarrival();
/// assert!(gap.as_secs_f64() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    rate_hz: f64,
    rng: DetRng,
}

impl ArrivalStream {
    /// Creates a stream with `rate_hz` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not finite and positive.
    pub fn new(rate_hz: f64, rng: DetRng) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "invalid rate: {rate_hz}"
        );
        ArrivalStream { rate_hz, rng }
    }

    /// The arrival rate in Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Draws the next inter-arrival gap (exponential, never exactly zero).
    pub fn next_interarrival(&mut self) -> SimDuration {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let secs = -u.ln() / self.rate_hz;
        SimDuration::from_secs_f64(secs.max(1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_interarrival_matches_rate() {
        let mut s = ArrivalStream::new(4.0, DetRng::new(3).stream("t"));
        let n = 20_000;
        let total: f64 = (0..n).map(|_| s.next_interarrival().as_secs_f64()).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gaps_are_positive() {
        let mut s = ArrivalStream::new(1000.0, DetRng::new(5).stream("t"));
        for _ in 0..1000 {
            assert!(s.next_interarrival() > SimDuration::ZERO);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ArrivalStream::new(1.0, DetRng::new(9).stream("x"));
        let mut b = ArrivalStream::new(1.0, DetRng::new(9).stream("x"));
        for _ in 0..100 {
            assert_eq!(a.next_interarrival(), b.next_interarrival());
        }
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_rejected() {
        ArrivalStream::new(0.0, DetRng::new(0));
    }
}
