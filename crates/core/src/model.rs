//! Analytic approximations of expected rollback distance.
//!
//! The paper's Figure 7 came from an (unpublished) stochastic model; this
//! module provides transparent renewal-theoretic approximations used to
//! cross-check the simulation, under these assumptions:
//!
//! * validations (successful acceptance tests anywhere in the system) form
//!   a Poisson process with rate `lambda_v`;
//! * internal messages form an independent Poisson process with rate
//!   `lambda_i`; the first internal event after a validation contaminates
//!   the process;
//! * the hardware fault strikes at a random instant in steady state.
//!
//! **Write-through**: the last durable state is the last validation point,
//! so the rollback distance is the backward recurrence time of the
//! validation process: `E[D_wt] ≈ 1/λv`.
//!
//! **Coordinated**: the last durable write happened at the last TB timer,
//! on average `Δ/2` ago. Its contents were *current* if the process was
//! clean at that timer — probability `λv/(λi+λv)` by competing
//! exponentials — in which case nothing older is lost. If the process was
//! dirty, the contents were the volatile checkpoint taken at contamination
//! onset; by memorylessness the time from onset back to the timer is
//! `≈ 1/λv` (exponential), so
//! `E[D_co] ≈ Δ/2 + (λi/(λi+λv)) · 1/λv`.
//!
//! Both formulas ignore network/blocking jitter (sub-millisecond against
//! seconds-scale distances).

/// Expected rollback distance (seconds) under the write-through baseline.
///
/// # Panics
///
/// Panics if `lambda_v` is not positive.
///
/// # Example
///
/// ```rust
/// let d = synergy::model::expected_rollback_write_through(1.0 / 60.0);
/// assert_eq!(d, 60.0);
/// ```
pub fn expected_rollback_write_through(lambda_v: f64) -> f64 {
    assert!(lambda_v > 0.0, "validation rate must be positive");
    1.0 / lambda_v
}

/// Expected rollback distance (seconds) under protocol coordination.
///
/// `delta_secs` is the TB checkpoint interval `Δ`.
///
/// # Panics
///
/// Panics if any rate or the interval is not positive.
pub fn expected_rollback_coordinated(lambda_v: f64, lambda_i: f64, delta_secs: f64) -> f64 {
    assert!(lambda_v > 0.0, "validation rate must be positive");
    assert!(lambda_i > 0.0, "internal rate must be positive");
    assert!(delta_secs > 0.0, "interval must be positive");
    let p_dirty = lambda_i / (lambda_i + lambda_v);
    delta_secs / 2.0 + p_dirty / lambda_v
}

/// The predicted improvement factor `E[D_wt] / E[D_co]`.
pub fn predicted_improvement(lambda_v: f64, lambda_i: f64, delta_secs: f64) -> f64 {
    expected_rollback_write_through(lambda_v)
        / expected_rollback_coordinated(lambda_v, lambda_i, delta_secs)
}

/// The largest TB interval `Δ` for which coordination beats write-through:
/// `E[D_co] < E[D_wt] ⟺ Δ/2 + p·1/λv < 1/λv ⟺ Δ < 2/(λi+λv)`.
///
/// Beyond this interval a (nearly always dirty) process pays the timer
/// staleness `Δ/2` on top of a contents age that already matches the
/// write-through distance.
pub fn crossover_interval(lambda_v: f64, lambda_i: f64) -> f64 {
    assert!(lambda_v > 0.0 && lambda_i > 0.0, "rates must be positive");
    2.0 / (lambda_i + lambda_v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_through_is_validation_recurrence() {
        assert_eq!(expected_rollback_write_through(0.1), 10.0);
    }

    #[test]
    fn coordinated_bounded_below_by_half_interval() {
        let d = expected_rollback_coordinated(1.0, 1e-9, 10.0);
        assert!((d - 5.0).abs() < 1e-3, "clean process loses ~Δ/2, got {d}");
    }

    #[test]
    fn coordinated_approaches_write_through_when_always_dirty() {
        // λi >> λv: p_dirty -> 1, E[D_co] -> Δ/2 + 1/λv.
        let lambda_v = 1.0 / 60.0;
        let d = expected_rollback_coordinated(lambda_v, 1e6, 1.0);
        assert!((d - (0.5 + 60.0)).abs() < 0.1, "{d}");
    }

    #[test]
    fn crossover_separates_winning_and_losing_intervals() {
        let lambda_v = 1.0 / 60.0;
        for lambda_i in [0.01, 0.1, 1.0] {
            let cross = crossover_interval(lambda_v, lambda_i);
            let winning = predicted_improvement(lambda_v, lambda_i, cross * 0.5);
            let losing = predicted_improvement(lambda_v, lambda_i, cross * 2.0);
            assert!(winning > 1.0, "should win below crossover (λi={lambda_i})");
            assert!(losing < 1.0, "should lose above crossover (λi={lambda_i})");
        }
    }

    #[test]
    fn improvement_decreases_with_internal_rate() {
        let f1 = predicted_improvement(1.0 / 60.0, 0.5, 5.0);
        let f2 = predicted_improvement(1.0 / 60.0, 3.0, 5.0);
        assert!(f1 > f2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        expected_rollback_write_through(0.0);
    }
}
