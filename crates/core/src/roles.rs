//! A uniform wrapper over the three per-role MDCD engines.

use synergy_mdcd::{
    Action, ActiveEngine, EngineSnapshot, Event, MdcdConfig, PeerEngine, ProcessRole,
    RecoveryDecision, ShadowEngine, TakeoverPlan,
};
use synergy_net::ProcessId;

/// One of the three MDCD engines, dispatched uniformly by the system driver.
#[derive(Clone, Debug)]
pub enum RoleEngine {
    /// `P1act`.
    Active(ActiveEngine),
    /// `P1sdw`.
    Shadow(ShadowEngine),
    /// `P2`.
    Peer(PeerEngine),
}

impl RoleEngine {
    /// Builds the engine for `role` in the canonical three-process layout.
    pub fn new(
        role: ProcessRole,
        cfg: MdcdConfig,
        active: ProcessId,
        shadow: ProcessId,
        peer: ProcessId,
    ) -> Self {
        match role {
            ProcessRole::Active => RoleEngine::Active(ActiveEngine::new(cfg, active, shadow, peer)),
            ProcessRole::Shadow => RoleEngine::Shadow(ShadowEngine::new(cfg, shadow, peer)),
            ProcessRole::Peer => RoleEngine::Peer(PeerEngine::new(cfg, peer, active, shadow)),
        }
    }

    /// The role this engine plays.
    pub fn role(&self) -> ProcessRole {
        match self {
            RoleEngine::Active(_) => ProcessRole::Active,
            RoleEngine::Shadow(s) => {
                if s.is_promoted() {
                    ProcessRole::Active
                } else {
                    ProcessRole::Shadow
                }
            }
            RoleEngine::Peer(_) => ProcessRole::Peer,
        }
    }

    /// Feeds one event.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        match self {
            RoleEngine::Active(e) => e.handle(event),
            RoleEngine::Shadow(e) => e.handle(event),
            RoleEngine::Peer(e) => e.handle(event),
        }
    }

    /// The dirty bit as defined for this role.
    pub fn dirty_bit(&self) -> bool {
        match self {
            RoleEngine::Active(e) => e.dirty_bit(),
            RoleEngine::Shadow(e) => e.dirty_bit(),
            RoleEngine::Peer(e) => e.dirty_bit(),
        }
    }

    /// The bit the adapted TB protocol consults when choosing checkpoint
    /// contents (pseudo dirty bit for `P1act`, paper footnote 2).
    pub fn checkpoint_bit(&self) -> bool {
        match self {
            RoleEngine::Active(e) => e.checkpoint_bit(),
            RoleEngine::Shadow(e) => e.checkpoint_bit(),
            RoleEngine::Peer(e) => e.checkpoint_bit(),
        }
    }

    /// Captures engine control state.
    pub fn snapshot(&self) -> EngineSnapshot {
        match self {
            RoleEngine::Active(e) => e.snapshot(),
            RoleEngine::Shadow(e) => e.snapshot(),
            RoleEngine::Peer(e) => e.snapshot(),
        }
    }

    /// Restores engine control state.
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        match self {
            RoleEngine::Active(e) => e.restore(snapshot),
            RoleEngine::Shadow(e) => e.restore(snapshot),
            RoleEngine::Peer(e) => e.restore(snapshot),
        }
    }

    /// The local software-recovery decision (shadow and peer only).
    pub fn recovery_decision(&self) -> Option<RecoveryDecision> {
        match self {
            RoleEngine::Active(_) => None,
            RoleEngine::Shadow(e) => Some(e.recovery_decision()),
            RoleEngine::Peer(e) => Some(e.recovery_decision()),
        }
    }

    /// Promotes a shadow engine (panics on other roles).
    pub fn take_over(&mut self) -> TakeoverPlan {
        match self {
            RoleEngine::Shadow(e) => e.take_over(),
            other => panic!("take_over on non-shadow role {:?}", other.role()),
        }
    }

    /// Access the peer engine (for retargeting after takeover).
    pub fn as_peer_mut(&mut self) -> Option<&mut PeerEngine> {
        match self {
            RoleEngine::Peer(e) => Some(e),
            _ => None,
        }
    }

    /// Acceptance tests executed by this engine.
    pub fn at_runs(&self) -> u64 {
        match self {
            RoleEngine::Active(e) => e.at_runs(),
            RoleEngine::Shadow(e) => e.at_runs(),
            RoleEngine::Peer(e) => e.at_runs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACT: ProcessId = ProcessId(1);
    const SDW: ProcessId = ProcessId(2);
    const PEER: ProcessId = ProcessId(3);

    fn role(r: ProcessRole) -> RoleEngine {
        RoleEngine::new(r, MdcdConfig::modified(), ACT, SDW, PEER)
    }

    #[test]
    fn roles_report_themselves() {
        assert_eq!(role(ProcessRole::Active).role(), ProcessRole::Active);
        assert_eq!(role(ProcessRole::Shadow).role(), ProcessRole::Shadow);
        assert_eq!(role(ProcessRole::Peer).role(), ProcessRole::Peer);
    }

    #[test]
    fn promoted_shadow_reports_active() {
        let mut e = role(ProcessRole::Shadow);
        e.take_over();
        assert_eq!(e.role(), ProcessRole::Active);
    }

    #[test]
    fn active_has_no_local_recovery_decision() {
        assert!(role(ProcessRole::Active).recovery_decision().is_none());
        assert!(role(ProcessRole::Peer).recovery_decision().is_some());
    }

    #[test]
    #[should_panic(expected = "take_over on non-shadow")]
    fn takeover_panics_on_peer() {
        role(ProcessRole::Peer).take_over();
    }

    #[test]
    fn checkpoint_bit_for_active_is_pseudo() {
        let e = role(ProcessRole::Active);
        assert!(e.dirty_bit(), "P1act always dirty");
        assert!(!e.checkpoint_bit(), "pseudo bit starts clean");
    }
}
