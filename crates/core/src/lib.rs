//! Synergistic coordination between software (MDCD) and hardware (TB)
//! fault-tolerance protocols — a reproduction of Tai, Tso, Alkalai, Chau &
//! Sanders, *"Synergistic Coordination between Software and Hardware Fault
//! Tolerance Techniques"*, DSN 2001.
//!
//! The crate assembles the sans-io protocol engines from [`synergy_mdcd`]
//! and [`synergy_tb`] into a complete three-node guarded system running on
//! the deterministic simulator from [`synergy_des`]:
//!
//! * `P1act` — active, low-confidence version of application component 1;
//! * `P1sdw` — its high-confidence shadow (messages suppressed and logged);
//! * `P2` — the second, high-confidence application component.
//!
//! # Schemes
//!
//! [`Scheme`] selects how (and whether) the two protocols run together:
//!
//! | Scheme | Software FT | Hardware FT | Paper reference |
//! |---|---|---|---|
//! | [`Scheme::Coordinated`] | modified MDCD | adapted TB | §3 + §4 (the contribution) |
//! | [`Scheme::WriteThrough`] | original MDCD | Type-2 checkpoints written through to disk | §3 (baseline) |
//! | [`Scheme::Naive`] | original MDCD | original TB, no coordination | §4.1 (what goes wrong) |
//! | [`Scheme::MdcdOnly`] | original MDCD | none | §2.1 |
//!
//! # Quick start
//!
//! ```rust
//! use synergy::{Mission, Scheme, SystemConfig};
//!
//! let config = SystemConfig::builder()
//!     .scheme(Scheme::Coordinated)
//!     .seed(42)
//!     .duration_secs(120.0)
//!     .internal_rate_per_min(60.0)
//!     .external_rate_per_min(2.0)
//!     .hardware_fault_at_secs(90.0)
//!     .build();
//! let outcome = Mission::new(config).run();
//! assert!(outcome.verdicts.all_hold());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod checkers;
pub mod config;
pub mod explorer;
pub mod faults;
pub mod metrics;
pub mod model;
pub mod payload;
pub mod regime;
pub mod roles;
pub mod scenario;
pub mod system;
pub mod workload;

pub use app::{Application, CounterApp};
pub use checkers::{GlobalChecker, Verdicts};
pub use config::{Scheme, SystemConfig, SystemConfigBuilder};
pub use faults::{FaultPlan, FaultPlanError, HardwareFault, NodeId, SoftwareFault};
pub use metrics::RunMetrics;
pub use payload::{CheckpointPayload, SentRecord};
pub use regime::{
    diff_device_streams, filter_injected_escapes, run_regime_mission, AtCoveragePlan,
    BadMessagePlan, ByzantinePlan, EscapeRecord, RegimePlan, RegimeReport, RegimeVerdict,
    ResyncViolationPlan,
};
pub use synergy_net::MissionId;
pub use system::{Mission, MissionOutcome, System};
