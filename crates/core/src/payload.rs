//! The composite checkpoint payload.
//!
//! Bulky payload fields (application bytes, envelope logs, sent records)
//! live behind `Arc`s: bundling a payload — which MDCD does on every
//! confidence-changing message — shares the host's buffers instead of
//! deep-copying them. `Arc<T>`/`Arc<[T]>` encode byte-identically to
//! `T`/`Vec<T>`, so checkpoint records and CRCs are unchanged.

use std::sync::Arc;

use synergy_codec::codec_struct;
use synergy_des::SimTime;
use synergy_mdcd::EngineSnapshot;
use synergy_net::{Envelope, MsgSeqNo, ProcessId};
use synergy_storage::{Checkpoint, CheckpointError};

/// One outgoing application message, as recorded by the host for the
/// global-state checkers (who needs to know *where* each sequence number
/// went, which the engine's counter alone cannot tell).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SentRecord {
    /// Destination process.
    pub to: ProcessId,
    /// Sender-assigned sequence number.
    pub seq: MsgSeqNo,
}

/// Everything one process must persist to be recoverable: application state,
/// MDCD engine control state, and — for stable checkpoints — the messages
/// sent but not yet acknowledged (the TB recoverability rule, paper §2.2).
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointPayload {
    /// Serialized application state (shared; cloning a payload bumps a
    /// refcount).
    pub app: Arc<[u8]>,
    /// MDCD engine snapshot taken at the same instant.
    pub engine: EngineSnapshot,
    /// Unacknowledged outgoing messages to re-send on hardware recovery
    /// (empty in volatile checkpoints — MDCD recovery restores messages from
    /// the shadow's log instead).
    pub unacked: Vec<Arc<Envelope>>,
    /// Every process-to-process application message this state reflects as
    /// sent, in sending order (consumed by the global-state checkers).
    pub sent: Arc<[SentRecord]>,
    /// Receive log attached to volatile-copy stable checkpoints: messages
    /// delivered *after* the copied state was snapshotted. On hardware
    /// recovery the driver replays those of them that the restored global
    /// cut still reflects as sent, closing the receiver-side recoverability
    /// gap (DESIGN.md §8, decision 5). Empty for current-state checkpoints.
    pub replay: Vec<Arc<Envelope>>,
    /// True simulation time of the *state* captured here. Copying a volatile
    /// checkpoint into a stable one preserves this timestamp: rollback
    /// distance is measured against the age of the restored state, not the
    /// time the disk write happened.
    pub state_time_nanos: u64,
}

codec_struct!(SentRecord { to, seq });
codec_struct!(CheckpointPayload {
    app,
    engine,
    unacked,
    sent,
    replay,
    state_time_nanos
});

impl CheckpointPayload {
    /// Bundles a payload. Callers that already hold shared buffers pass them
    /// through untouched; `Vec`s are converted (one copy) at the boundary.
    pub fn new(
        app: impl Into<Arc<[u8]>>,
        engine: EngineSnapshot,
        unacked: Vec<Arc<Envelope>>,
        sent: impl Into<Arc<[SentRecord]>>,
        state_time: SimTime,
    ) -> Self {
        CheckpointPayload {
            app: app.into(),
            engine,
            unacked,
            sent: sent.into(),
            replay: Vec::new(),
            state_time_nanos: state_time.as_nanos(),
        }
    }

    /// The instant the captured state was live.
    pub fn state_time(&self) -> SimTime {
        SimTime::from_nanos(self.state_time_nanos)
    }

    /// Encodes into a storage [`Checkpoint`] record.
    ///
    /// # Errors
    ///
    /// Propagates codec failures (none occur for well-formed payloads).
    pub fn into_checkpoint(
        self,
        seq: u64,
        label: impl Into<String>,
    ) -> Result<Checkpoint, CheckpointError> {
        self.to_checkpoint(seq, label)
    }

    /// Borrowing variant of [`into_checkpoint`](Self::into_checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates codec failures (none occur for well-formed payloads).
    pub fn to_checkpoint(
        &self,
        seq: u64,
        label: impl Into<String>,
    ) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::encode(seq, self.state_time(), label, self)
    }

    /// Encodes into a [`Checkpoint`] through a caller-owned scratch buffer
    /// (see [`Checkpoint::encode_with_scratch`]); repeated checkpointing
    /// reuses one serialization allocation.
    ///
    /// # Errors
    ///
    /// Propagates codec failures (none occur for well-formed payloads).
    pub fn to_checkpoint_with(
        &self,
        seq: u64,
        label: impl Into<String>,
        scratch: &mut Vec<u8>,
    ) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::encode_with_scratch(seq, self.state_time(), label, self, scratch)
    }

    /// Decodes a payload back out of a storage record.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on corruption or format mismatch.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        ckpt.decode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::MsgSeqNo;

    fn sample() -> CheckpointPayload {
        CheckpointPayload::new(
            vec![1, 2, 3],
            EngineSnapshot {
                dirty: true,
                msg_sn: MsgSeqNo(4),
                ..EngineSnapshot::default()
            },
            Vec::new(),
            vec![SentRecord {
                to: ProcessId(3),
                seq: MsgSeqNo(4),
            }],
            SimTime::from_secs_f64(1.5),
        )
    }

    #[test]
    fn roundtrips_through_storage() {
        let payload = sample();
        let ckpt = payload.clone().into_checkpoint(7, "stable").unwrap();
        assert_eq!(ckpt.seq(), 7);
        assert_eq!(ckpt.taken_at(), SimTime::from_secs_f64(1.5));
        let back = CheckpointPayload::from_checkpoint(&ckpt).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn state_time_survives_copying() {
        // Copying volatile -> stable must preserve the original state time:
        // this is what makes rollback-distance accounting honest.
        let payload = sample();
        let volatile = payload.clone().into_checkpoint(1, "type1").unwrap();
        let copied = CheckpointPayload::from_checkpoint(&volatile).unwrap();
        let stable = copied.into_checkpoint(2, "stable-copy").unwrap();
        assert_eq!(stable.taken_at(), SimTime::from_secs_f64(1.5));
    }
}
