//! The simulated three-node guarded system.
//!
//! `System` is the discrete-event driver that hosts the sans-io MDCD and TB
//! engines on simulated nodes, clocks, network and storage, injects faults,
//! orchestrates both recovery procedures, and runs the global-state checkers
//! at every recovery point.
//!
//! Topology (paper §2.1): node 0 runs `P1act`, node 1 runs `P1sdw`, node 2
//! runs `P2`; one device endpoint models the external world.

use synergy_clocks::{ClockFleet, LocalTime};
use synergy_des::{ActorId, DetRng, EventId, SimTime, Simulator, Trace};
use synergy_mdcd::{
    Action as MdcdAction, CheckpointKind, Event as MdcdEvent, OutboundMessage, ProcessRole,
    RecoveryDecision,
};
use synergy_net::{
    AckTracker, DelayModel, DeviceId, Endpoint, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId,
    RouteDecision, SimNetwork,
};
use synergy_storage::{StableStore, VolatileStore};
use synergy_tb::{
    Action as TbAction, ContentsChoice, Event as TbEvent, TbConfig, TbEngine,
};

use crate::app::{Application, CounterApp};
use crate::checkers::{GlobalChecker, RestoredState, Verdicts, Violation};
use crate::config::SystemConfig;
use crate::metrics::{RollbackCause, RollbackRecord, RunMetrics};
use crate::payload::{CheckpointPayload, SentRecord};
use crate::roles::RoleEngine;
use crate::workload::ArrivalStream;

/// `P1act`'s process id.
pub const P1ACT: ProcessId = ProcessId(1);
/// `P1sdw`'s process id.
pub const P1SDW: ProcessId = ProcessId(2);
/// `P2`'s process id.
pub const P2: ProcessId = ProcessId(3);
/// The external device.
pub const DEVICE: DeviceId = DeviceId(0);

/// Sequence-number namespace for transport acks (disjoint from both the
/// application counter and the engines' control counter).
const ACK_SEQ_BASE: u64 = 1 << 62;

/// The paper's name for a process id in the canonical layout (`P1act`,
/// `P1sdw`, `P2`), or `"?"` for ids outside it.
pub fn process_name(pid: ProcessId) -> &'static str {
    match pid {
        P1ACT => "P1act",
        P1SDW => "P1sdw",
        P2 => "P2",
        _ => "?",
    }
}

#[derive(Debug, Clone)]
enum Ev {
    Deliver { env: Envelope, inc: u64 },
    TbTimer { deadline: LocalTime, epoch: u64 },
    BlockingOver { epoch: u64 },
    Tick { component: u8, external: bool, scripted: bool },
    SoftwareFaultActivate,
    HardwareCrash { node: usize },
    HardwareRecover,
    Resync,
    End,
}

struct Host {
    pid: ProcessId,
    node: usize,
    app: CounterApp,
    engine: RoleEngine,
    tb: Option<TbEngine>,
    volatile: VolatileStore,
    stable: StableStore,
    acks: AckTracker,
    sent_log: Vec<SentRecord>,
    up: bool,
    dead: bool,
    volatile_seq: u64,
    wt_stable_seq: u64,
    ack_sn: u64,
    tb_epoch: u64,
    timer_event: Option<EventId>,
    blocking_started_at: Option<SimTime>,
    /// Set once this process's state has been installed by a state
    /// transfer (shadow refresh); message-history checks then no longer
    /// apply to it.
    synthetic_history: bool,
    /// Application messages delivered since the last volatile checkpoint;
    /// attached to volatile-copy stable writes so recovery can replay
    /// receipts the copied state predates (DESIGN.md §8, decision 5).
    recv_log: Vec<Envelope>,
}

impl Host {
    fn current_payload(&self, now: SimTime) -> CheckpointPayload {
        CheckpointPayload::new(
            self.app.snapshot(),
            self.engine.snapshot(),
            self.acks.unacked(),
            self.sent_log.clone(),
            now,
        )
    }
}

/// The running simulation. For scripted scenarios use the fine-grained
/// accessors; for statistical runs prefer [`Mission`].
pub struct System {
    cfg: SystemConfig,
    sim: Simulator<Ev>,
    net: SimNetwork,
    clocks: ClockFleet,
    hosts: Vec<Host>,
    host_actors: Vec<ActorId>,
    device_actor: ActorId,
    system_actor: ActorId,
    device_log: Vec<(SimTime, Envelope)>,
    arrivals: Vec<(u8, bool, ArrivalStream)>,
    metrics: RunMetrics,
    verdicts: Verdicts,
    global_validated: MsgSeqNo,
    net_inc: u64,
    resync_pending: bool,
    software_recovered: bool,
    crash_pending: Vec<usize>,
    finished: bool,
}

impl System {
    /// Builds a system from `cfg` (faults validated, workload scheduled).
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.faults.validate();
        let mut sim: Simulator<Ev> = Simulator::new(cfg.seed);
        if !cfg.trace {
            sim.trace().disable();
        }
        let a_act = sim.register_actor("P1act");
        let a_sdw = sim.register_actor("P1sdw");
        let a_p2 = sim.register_actor("P2");
        let device_actor = sim.register_actor("device");
        let system_actor = sim.register_actor("system");

        let root = DetRng::new(cfg.seed);
        let net = SimNetwork::new(
            DelayModel::uniform(cfg.tmin, cfg.tmax),
            root.stream("network"),
        );
        let clocks = ClockFleet::generate(3, cfg.sync, &root);

        let mdcd_cfg = cfg.scheme.mdcd_config();
        let tb_cfg = cfg.scheme.tb_variant().map(|variant| {
            TbConfig::new(variant, cfg.tb_interval, cfg.sync, cfg.tmin, cfg.tmax)
        });

        let mk_host = |role: ProcessRole, pid: ProcessId, node: usize| Host {
            pid,
            node,
            // All three applications share one salt: the replicas must
            // produce identical streams, and the restart-from-scratch path
            // reconstructs the same initial state.
            app: CounterApp::new(cfg.seed ^ 0xA5A5),
            engine: RoleEngine::new(role, mdcd_cfg, P1ACT, P1SDW, P2),
            tb: tb_cfg.map(TbEngine::new),
            volatile: VolatileStore::new(),
            stable: StableStore::new(),
            acks: AckTracker::new(),
            sent_log: Vec::new(),
            up: true,
            dead: false,
            volatile_seq: 0,
            wt_stable_seq: 0,
            ack_sn: 0,
            tb_epoch: 0,
            timer_event: None,
            blocking_started_at: None,
            synthetic_history: false,
            recv_log: Vec::new(),
        };
        let hosts = vec![
            mk_host(ProcessRole::Active, P1ACT, 0),
            mk_host(ProcessRole::Shadow, P1SDW, 1),
            mk_host(ProcessRole::Peer, P2, 2),
        ];

        let mut sys = System {
            sim,
            net,
            clocks,
            hosts,
            host_actors: vec![a_act, a_sdw, a_p2],
            device_actor,
            system_actor,
            device_log: Vec::new(),
            arrivals: Vec::new(),
            metrics: RunMetrics::new(),
            verdicts: Verdicts::default(),
            global_validated: MsgSeqNo(0),
            net_inc: 0,
            resync_pending: false,
            software_recovered: false,
            crash_pending: Vec::new(),
            finished: false,
            cfg,
        };
        sys.bootstrap(root);
        sys
    }

    fn bootstrap(&mut self, root: DetRng) {
        // Workload streams: component 1 drives both replicas, component 2
        // drives P2; internal and external arrivals are independent streams.
        for (component, external) in [(1u8, false), (1, true), (2, false), (2, true)] {
            let rate = if external {
                self.cfg.external_rate_hz
            } else {
                self.cfg.internal_rate_hz
            };
            if rate <= 0.0 {
                continue;
            }
            let label = format!("workload:c{component}:ext{external}");
            let mut stream = ArrivalStream::new(rate, root.stream(&label));
            let first = stream.next_interarrival();
            self.arrivals.push((component, external, stream));
            self.sim.schedule_in(
                first,
                self.system_actor,
                Ev::Tick {
                    component,
                    external,
                    scripted: false,
                },
            );
        }
        // TB timers.
        for i in 0..3 {
            if self.hosts[i].tb.is_some() {
                let actions = self.hosts[i].tb.as_mut().expect("checked").start();
                let now = self.sim.now();
                self.apply_tb_actions(i, actions, now);
            }
        }
        // Scripted sends (one-shot: no arrival stream exists for them, so
        // on_tick does not reschedule).
        for s in self.cfg.scripted_sends.clone() {
            self.sim.schedule_at(
                s.at,
                self.system_actor,
                Ev::Tick {
                    component: s.component,
                    external: s.external,
                    scripted: true,
                },
            );
        }
        // Faults.
        if let Some(sw) = self.cfg.faults.software {
            self.sim
                .schedule_at(sw.at, self.system_actor, Ev::SoftwareFaultActivate);
        }
        for hw in self.cfg.faults.hardware.clone() {
            self.sim
                .schedule_at(hw.at, self.system_actor, Ev::HardwareCrash { node: hw.node });
        }
        let end = SimTime::ZERO + self.cfg.duration;
        self.sim.schedule_at(end, self.system_actor, Ev::End);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Checker verdicts collected so far.
    pub fn verdicts(&self) -> &Verdicts {
        &self.verdicts
    }

    /// The run trace.
    pub fn trace(&self) -> &Trace {
        self.sim.trace_ref()
    }

    /// External messages received by the device, in arrival order.
    pub fn device_log(&self) -> &[(SimTime, Envelope)] {
        &self.device_log
    }

    /// The ground-truth highest validated sequence number.
    pub fn global_validated(&self) -> MsgSeqNo {
        self.global_validated
    }

    /// Dirty bits `(P1act pseudo, P1sdw, P2)` right now.
    pub fn dirty_bits(&self) -> (bool, bool, bool) {
        (
            self.hosts[0].engine.checkpoint_bit(),
            self.hosts[1].engine.dirty_bit(),
            self.hosts[2].engine.dirty_bit(),
        )
    }

    /// Whether the shadow has taken over.
    pub fn shadow_promoted(&self) -> bool {
        self.hosts[1].engine.role() == ProcessRole::Active
    }

    /// Application state of host `i` (0 = act, 1 = sdw, 2 = P2).
    pub fn app_state(&self, i: usize) -> &crate::app::CounterState {
        self.hosts[i].app.state()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Runs until the configured duration elapses.
    pub fn run(&mut self) {
        while !self.finished {
            let Some(fired) = self.sim.step() else { break };
            self.dispatch(fired.actor, fired.time, fired.event);
        }
    }

    fn dispatch(&mut self, actor: ActorId, now: SimTime, ev: Ev) {
        match ev {
            Ev::End => self.finished = true,
            Ev::Deliver { env, inc } => self.on_deliver(actor, now, env, inc),
            Ev::TbTimer { deadline, epoch } => self.on_tb_timer(actor, now, deadline, epoch),
            Ev::BlockingOver { epoch } => self.on_blocking_over(actor, now, epoch),
            Ev::Tick {
                component,
                external,
                scripted,
            } => self.on_tick(now, component, external, scripted),
            Ev::SoftwareFaultActivate => {
                self.sim.record(self.system_actor, "fault.software", "design fault armed");
                self.hosts[0].app.set_faulty(true);
            }
            Ev::HardwareCrash { node } => self.on_hardware_crash(now, node),
            Ev::HardwareRecover => self.on_hardware_recover(now),
            Ev::Resync => self.on_resync(now),
        }
    }

    fn host_index_of_actor(&self, actor: ActorId) -> Option<usize> {
        self.host_actors.iter().position(|a| *a == actor)
    }

    fn on_deliver(&mut self, actor: ActorId, now: SimTime, env: Envelope, inc: u64) {
        if inc != self.net_inc {
            return; // pre-recovery traffic
        }
        if actor == self.device_actor {
            self.sim.record(self.device_actor, "device.recv", env.to_string());
            self.device_log.push((now, env));
            return;
        }
        let Some(i) = self.host_index_of_actor(actor) else {
            return;
        };
        if !self.hosts[i].up {
            return; // crashed node: message lost
        }
        // Messages from a process dead by takeover are stale.
        if let Some(s) = self.hosts.iter().position(|h| h.pid == env.from()) {
            if self.hosts[s].dead {
                return;
            }
        }
        if let MessageBody::Ack { of } = env.body {
            self.hosts[i].acks.on_ack(of);
            return;
        }
        self.sim
            .record(self.host_actors[i], "msg.recv", env.to_string());
        let bit_before = self.hosts[i].engine.checkpoint_bit();
        let actions = self.hosts[i].engine.handle(MdcdEvent::Deliver(env));
        self.apply_mdcd_actions(i, actions, now);
        let bit_after = self.hosts[i].engine.checkpoint_bit();
        if bit_before && !bit_after {
            self.notify_dirty_cleared(i, now);
        }
    }

    fn notify_dirty_cleared(&mut self, i: usize, now: SimTime) {
        let Some(tb) = self.hosts[i].tb.as_mut() else {
            return;
        };
        if !tb.is_blocking() {
            return;
        }
        let actions = tb.handle(TbEvent::DirtyCleared);
        self.apply_tb_actions(i, actions, now);
    }

    fn on_tb_timer(&mut self, actor: ActorId, now: SimTime, deadline: LocalTime, epoch: u64) {
        let Some(i) = self.host_index_of_actor(actor) else {
            return;
        };
        let host = &mut self.hosts[i];
        if !host.up || host.dead || epoch != host.tb_epoch {
            return;
        }
        host.timer_event = None;
        let dirty = host.engine.checkpoint_bit();
        let Some(tb) = host.tb.as_mut() else { return };
        let now_local = deadline; // the timer fired exactly at its local deadline
        let actions = tb.handle(TbEvent::TimerExpired { now_local, dirty });
        self.sim.record(
            self.host_actors[i],
            "tb.timer",
            format!("dirty={} local={deadline}", u8::from(dirty)),
        );
        self.apply_tb_actions(i, actions, now);
    }

    fn on_blocking_over(&mut self, actor: ActorId, now: SimTime, epoch: u64) {
        let Some(i) = self.host_index_of_actor(actor) else {
            return;
        };
        if !self.hosts[i].up || epoch != self.hosts[i].tb_epoch {
            return;
        }
        let Some(tb) = self.hosts[i].tb.as_mut() else {
            return;
        };
        let actions = tb.handle(TbEvent::BlockingElapsed);
        self.apply_tb_actions(i, actions, now);
    }

    fn on_tick(&mut self, now: SimTime, component: u8, external: bool, scripted: bool) {
        // Schedule the next arrival of this stream first (scripted sends
        // are one-shot).
        if !scripted {
            if let Some((_, _, stream)) = self
                .arrivals
                .iter_mut()
                .find(|(c, e, _)| *c == component && *e == external)
            {
                let gap = stream.next_interarrival();
                self.sim.schedule_in(
                    gap,
                    self.system_actor,
                    Ev::Tick {
                        component,
                        external,
                        scripted: false,
                    },
                );
            }
        }
        let targets: &[usize] = if component == 1 { &[0, 1] } else { &[2] };
        for &i in targets {
            if !self.hosts[i].up || self.hosts[i].dead {
                continue;
            }
            let host = &mut self.hosts[i];
            let (payload, to): (Vec<u8>, Endpoint) = if external {
                (host.app.produce_external(), Endpoint::Device(DEVICE))
            } else {
                let dest = match host.engine.role() {
                    ProcessRole::Peer => Endpoint::Process(P1ACT), // engine broadcasts
                    _ => Endpoint::Process(P2),
                };
                (host.app.produce_internal(), dest)
            };
            let at_pass = host.app.acceptance_test(&payload);
            let actions = host.engine.handle(MdcdEvent::AppSend(OutboundMessage {
                to,
                payload,
                external,
                at_pass,
            }));
            self.apply_mdcd_actions(i, actions, now);
        }
    }

    // ------------------------------------------------------------------
    // Action execution
    // ------------------------------------------------------------------

    fn apply_mdcd_actions(&mut self, i: usize, actions: Vec<MdcdAction>, now: SimTime) {
        let mut software_error = false;
        for action in actions {
            match action {
                MdcdAction::Send(env) => self.send_envelope(i, env, now),
                MdcdAction::TakeCheckpoint { kind, engine } => {
                    self.take_volatile_checkpoint(i, kind, engine, now);
                }
                MdcdAction::DeliverToApp(env) => {
                    let host = &mut self.hosts[i];
                    if let MessageBody::Application { payload, .. } = &env.body {
                        host.app.on_message(env.from(), env.id.seq, payload);
                        host.recv_log.push(env.clone());
                        self.metrics.messages_delivered += 1;
                    }
                    // Transport-level acknowledgment back to the sender.
                    let host = &mut self.hosts[i];
                    host.ack_sn += 1;
                    let ack = Envelope::new(
                        MsgId {
                            from: host.pid,
                            seq: MsgSeqNo(ACK_SEQ_BASE + host.ack_sn),
                        },
                        env.from(),
                        MessageBody::Ack { of: env.id },
                    );
                    self.route_only(ack, now);
                }
                MdcdAction::AtPerformed { pass } => {
                    self.metrics.at_runs += 1;
                    if pass {
                        self.sim.record(self.host_actors[i], "at.pass", "");
                    } else {
                        self.metrics.at_failures += 1;
                        self.sim.record(self.host_actors[i], "at.fail", "");
                    }
                }
                MdcdAction::SoftwareErrorDetected => software_error = true,
            }
        }
        if software_error {
            self.software_recovery(now);
        }
    }

    fn send_envelope(&mut self, i: usize, env: Envelope, now: SimTime) {
        {
            let host = &mut self.hosts[i];
            if let (MessageBody::Application { .. }, Endpoint::Process(_)) = (&env.body, env.to) {
                host.sent_log.push(SentRecord {
                    to: match env.to {
                        Endpoint::Process(p) => p,
                        Endpoint::Device(_) => unreachable!("guarded above"),
                    },
                    seq: env.id.seq,
                });
                host.acks.on_send(env.clone());
            }
        }
        if let MessageBody::PassedAt { msg_sn, .. } = env.body {
            self.global_validated = self.global_validated.max(msg_sn);
        }
        self.metrics.messages_sent += 1;
        self.sim
            .record(self.host_actors[i], "msg.send", env.to_string());
        self.route_only(env, now);
    }

    fn route_only(&mut self, env: Envelope, now: SimTime) {
        let actor = match env.to {
            Endpoint::Process(p) => match self.hosts.iter().position(|h| h.pid == p) {
                Some(idx) => self.host_actors[idx],
                None => return,
            },
            Endpoint::Device(_) => self.device_actor,
        };
        match self.net.route(now, &env) {
            RouteDecision::Deliver { at, duplicate_at } => {
                let inc = self.net_inc;
                self.sim.schedule_at(
                    at.max(now),
                    actor,
                    Ev::Deliver {
                        env: env.clone(),
                        inc,
                    },
                );
                if let Some(dup) = duplicate_at {
                    self.sim
                        .schedule_at(dup.max(now), actor, Ev::Deliver { env, inc });
                }
            }
            RouteDecision::Dropped => {}
        }
    }

    fn take_volatile_checkpoint(
        &mut self,
        i: usize,
        kind: CheckpointKind,
        engine: synergy_mdcd::EngineSnapshot,
        now: SimTime,
    ) {
        let host = &mut self.hosts[i];
        host.volatile_seq += 1;
        let payload = CheckpointPayload::new(
            host.app.snapshot(),
            engine,
            Vec::new(),
            host.sent_log.clone(),
            now,
        );
        let ckpt = payload
            .clone()
            .into_checkpoint(host.volatile_seq, kind.to_string())
            .expect("payload encodes");
        host.volatile.save(ckpt);
        host.recv_log.clear();
        self.metrics.count_volatile(kind);
        self.sim
            .record(self.host_actors[i], format!("ckpt.{kind}"), "volatile");
        // Write-through baseline: Type-2 checkpoints are persisted.
        if self.cfg.scheme.stable_on_validation() && kind == CheckpointKind::Type2 {
            let host = &mut self.hosts[i];
            host.wt_stable_seq += 1;
            let mut stable_payload = payload;
            stable_payload.unacked = host.acks.unacked();
            let ckpt = stable_payload
                .into_checkpoint(host.wt_stable_seq, "stable-type2")
                .expect("payload encodes");
            host.stable.begin_write(ckpt).expect("no concurrent WT write");
            host.stable.commit_write().expect("just begun");
            self.metrics.stable_commits += 1;
            self.sim
                .record(self.host_actors[i], "ckpt.stable", "write-through type-2");
        }
    }

    fn apply_tb_actions(&mut self, i: usize, actions: Vec<TbAction>, now: SimTime) {
        for action in actions {
            match action {
                TbAction::BeginStableWrite {
                    contents,
                    expected_dirty,
                } => self.begin_stable_write(i, contents, expected_dirty, now),
                TbAction::StartBlocking { duration } => {
                    let host = &mut self.hosts[i];
                    host.blocking_started_at = Some(now);
                    self.metrics.blocking_periods += 1;
                    self.metrics.blocking_total += duration;
                    let epoch = host.tb_epoch;
                    // Blocking is defined on the local clock; translate its
                    // end into true time through this node's clock.
                    let node = host.node;
                    let end_local = self.clocks.read(node, now) + duration;
                    let end_true = self.clocks.when_local(node, end_local).max(now);
                    self.sim
                        .schedule_at(end_true, self.host_actors[i], Ev::BlockingOver { epoch });
                    let engine_actions = self.hosts[i].engine.handle(MdcdEvent::BlockingStarted);
                    self.apply_mdcd_actions(i, engine_actions, now);
                    self.sim.record(
                        self.host_actors[i],
                        "tb.blocking",
                        format!("for {duration}"),
                    );
                }
                TbAction::ReplaceWithCurrentState => {
                    let payload = self.hosts[i].current_payload(
                        self.hosts[i].blocking_started_at.unwrap_or(now),
                    );
                    let host = &mut self.hosts[i];
                    let seq = host.stable.in_progress().map_or(1, |c| c.seq());
                    let ckpt = payload
                        .into_checkpoint(seq, "stable-replaced")
                        .expect("payload encodes");
                    host.stable
                        .replace_in_progress(ckpt)
                        .expect("write in progress during blocking");
                    self.metrics.stable_replacements += 1;
                    self.sim.record(
                        self.host_actors[i],
                        "tb.replace",
                        "dirty cleared in blocking: switch to current state",
                    );
                }
                TbAction::CommitStableWrite { ndc } => {
                    let host = &mut self.hosts[i];
                    host.blocking_started_at = None;
                    host.stable.commit_write().expect("write in progress");
                    self.metrics.stable_commits += 1;
                    self.sim.record(
                        self.host_actors[i],
                        "ckpt.stable",
                        format!("committed {ndc}"),
                    );
                    let mut engine_actions = self.hosts[i]
                        .engine
                        .handle(MdcdEvent::StableCheckpointCommitted(ndc));
                    engine_actions.extend(self.hosts[i].engine.handle(MdcdEvent::BlockingEnded));
                    self.apply_mdcd_actions(i, engine_actions, now);
                }
                TbAction::ScheduleTimer { at } => self.schedule_tb_timer(i, at, now),
                TbAction::RequestResync => {
                    if !self.resync_pending {
                        self.resync_pending = true;
                        // One message round-trip of latency for the
                        // resynchronization protocol.
                        self.sim.schedule_in(
                            self.cfg.tmax,
                            self.system_actor,
                            Ev::Resync,
                        );
                    }
                }
            }
        }
    }

    fn schedule_tb_timer(&mut self, i: usize, at_local: LocalTime, now: SimTime) {
        let node = self.hosts[i].node;
        let fire = self.clocks.when_local(node, at_local).max(now);
        let epoch = self.hosts[i].tb_epoch;
        let id = self.sim.schedule_at(
            fire,
            self.host_actors[i],
            Ev::TbTimer {
                deadline: at_local,
                epoch,
            },
        );
        self.hosts[i].timer_event = Some(id);
    }

    fn begin_stable_write(
        &mut self,
        i: usize,
        contents: ContentsChoice,
        expected_dirty: bool,
        now: SimTime,
    ) {
        let payload = match contents {
            ContentsChoice::CurrentState => self.hosts[i].current_payload(now),
            ContentsChoice::VolatileCopy => {
                match self.hosts[i].volatile.latest() {
                    Some(vol) => {
                        let mut p = CheckpointPayload::from_checkpoint(vol)
                            .expect("volatile checkpoints decode");
                        // The recoverability rule: save currently
                        // unacknowledged messages — but only those the copied
                        // state reflects as sent, so recovery cannot re-send
                        // messages the restored state never produced.
                        let horizon = p.engine.msg_sn;
                        p.unacked = self.hosts[i]
                            .acks
                            .unacked()
                            .into_iter()
                            .filter(|e| e.id.seq <= horizon)
                            .collect();
                        // Receipts delivered after the copied state: the
                        // senders may already hold their acknowledgments, so
                        // recovery must be able to replay them (driver-
                        // filtered against the restored cut).
                        p.replay = self.hosts[i].recv_log.clone();
                        p
                    }
                    None => {
                        // Defensive: a dirty bit without a volatile
                        // checkpoint (cannot happen through the engines).
                        self.metrics.dirty_fallbacks += 1;
                        self.hosts[i].current_payload(now)
                    }
                }
            }
        };
        let host = &mut self.hosts[i];
        let seq = host.tb.as_ref().map_or(0, |tb| tb.ndc().0) + 1;
        let label = match contents {
            ContentsChoice::CurrentState => "stable-current",
            ContentsChoice::VolatileCopy => "stable-volatile-copy",
        };
        let ckpt = payload.into_checkpoint(seq, label).expect("payload encodes");
        host.stable.begin_write(ckpt).expect("no overlapping TB writes");
        self.sim.record(
            self.host_actors[i],
            "tb.write",
            format!("{label} expected_dirty={}", u8::from(expected_dirty)),
        );
    }

    // ------------------------------------------------------------------
    // Software (MDCD) recovery
    // ------------------------------------------------------------------

    fn software_recovery(&mut self, now: SimTime) {
        if self.software_recovered {
            return;
        }
        self.software_recovered = true;
        self.metrics.software_recoveries += 1;
        self.sim.record(
            self.system_actor,
            "recovery.software",
            "AT failure: shadow takeover",
        );
        // P1act is dead; its in-flight messages are discarded on delivery.
        self.hosts[0].up = false;
        self.hosts[0].dead = true;

        // Local decisions + rollbacks for shadow and peer.
        for i in [1usize, 2] {
            let decision = self.hosts[i]
                .engine
                .recovery_decision()
                .expect("shadow/peer decide locally");
            let distance = match decision {
                RecoveryDecision::RollBack => self.rollback_to_volatile(i, now),
                RecoveryDecision::RollForward => 0.0,
            };
            self.metrics.rollbacks.push(RollbackRecord {
                process: self.hosts[i].pid,
                cause: RollbackCause::Software,
                decision,
                distance_secs: distance,
                at: now,
            });
            self.sim.record(
                self.host_actors[i],
                "recovery.decision",
                format!("{decision} ({distance:.3}s undone)"),
            );
        }

        // Shadow takes over and re-sends unvalidated suppressed messages.
        let plan = self.hosts[1].engine.take_over();
        if let Some(peer) = self.hosts[2].engine.as_peer_mut() {
            peer.retarget_active(P1SDW);
        }
        let resend = plan.resend;
        self.metrics.messages_resent += resend.len() as u64;
        for env in resend {
            self.send_envelope(1, env, now);
        }

        // Check the recovered (volatile) cut.
        let states: Vec<RestoredState> = [1usize, 2]
            .iter()
            .map(|&i| RestoredState {
                pid: self.hosts[i].pid,
                role: self.hosts[i].engine.role(),
                synthetic_history: self.hosts[i].synthetic_history,
                payload: self.hosts[i].current_payload(now),
            })
            .collect();
        let checker = GlobalChecker::new(P1ACT);
        let v = checker.check(&states, self.global_validated);
        self.verdicts.merge(v);
    }

    /// Restores host `i` from its most recent volatile checkpoint; returns
    /// the rollback distance in seconds.
    fn rollback_to_volatile(&mut self, i: usize, now: SimTime) -> f64 {
        let Some(ckpt) = self.hosts[i].volatile.latest_cloned() else {
            self.verdicts.violations.push(Violation {
                property: "validity-self",
                detail: format!(
                    "{} must roll back but has no volatile checkpoint",
                    self.hosts[i].pid
                ),
            });
            return 0.0;
        };
        let payload = CheckpointPayload::from_checkpoint(&ckpt).expect("volatile decodes");
        let distance = now
            .saturating_duration_since(payload.state_time())
            .as_secs_f64();
        let host = &mut self.hosts[i];
        host.app.restore(&payload.app);
        host.engine.restore(&payload.engine);
        host.sent_log = payload.sent.clone();
        host.recv_log.clear();
        // Messages beyond the restored horizon were never sent, per the
        // restored state; stop tracking their acknowledgements.
        let horizon = payload.engine.msg_sn;
        let kept: Vec<Envelope> = host
            .acks
            .unacked()
            .into_iter()
            .filter(|e| e.id.seq <= horizon)
            .collect();
        host.acks.restore(kept);
        // If a TB blocking period is in progress, the restored engine must
        // re-enter it (restore cleared the hold state).
        if host.tb.as_ref().is_some_and(TbEngine::is_blocking) {
            let actions = host.engine.handle(MdcdEvent::BlockingStarted);
            debug_assert!(actions.is_empty());
        }
        distance
    }

    // ------------------------------------------------------------------
    // Hardware fault + global rollback recovery
    // ------------------------------------------------------------------

    fn on_hardware_crash(&mut self, _now: SimTime, node: usize) {
        let Some(i) = self.hosts.iter().position(|h| h.node == node) else {
            return;
        };
        if self.hosts[i].dead {
            return; // crashing a dead node changes nothing
        }
        self.sim.record(
            self.host_actors[i],
            "fault.hardware",
            format!("node {node} crashed"),
        );
        let host = &mut self.hosts[i];
        host.up = false;
        host.volatile.wipe();
        if host.stable.is_writing() {
            self.metrics.torn_writes += 1;
        }
        host.stable.crash();
        self.crash_pending.push(i);
        self.sim.schedule_in(
            self.cfg.restart_delay,
            self.system_actor,
            Ev::HardwareRecover,
        );
    }

    fn on_hardware_recover(&mut self, now: SimTime) {
        if self.crash_pending.is_empty() {
            return;
        }
        self.crash_pending.clear();
        self.metrics.hardware_recoveries += 1;
        self.sim.record(
            self.system_actor,
            "recovery.hardware",
            "global rollback to stable checkpoints",
        );
        // All pre-crash traffic and control events are void.
        self.net_inc += 1;

        // Pick the recovery line. Under a TB scheme the stable checkpoints
        // are epoch-numbered and a crash can tear one process's in-flight
        // write while its peers commit theirs, so the system rolls back to
        // the newest epoch committed by *every* live process. Write-through
        // checkpoints are taken at each process's own validations (no
        // epochs); each process restores its newest record, whose mutual
        // consistency FIFO delivery of the `passed_AT` broadcast provides.
        let recovery_epoch: Option<u64> = if self.cfg.scheme.tb_variant().is_some() {
            self.hosts
                .iter()
                .filter(|h| !h.dead)
                .map(|h| h.stable.latest().map_or(0, |c| c.seq()))
                .min()
        } else {
            None
        };

        // Restore every live process from stable storage and gather the
        // restored cut for checking.
        let mut restored_payloads: Vec<(usize, CheckpointPayload)> = Vec::new();
        let mut resend: Vec<(usize, Envelope)> = Vec::new();
        for i in 0..3 {
            if self.hosts[i].dead {
                continue;
            }
            self.hosts[i].up = true;
            self.hosts[i].tb_epoch += 1;
            self.hosts[i].blocking_started_at = None;
            // A live host may have been mid-blocking with a stable write in
            // flight; the global rollback supersedes that establishment.
            self.hosts[i].stable.abort_write();
            let chosen = match recovery_epoch {
                Some(epoch) => self.hosts[i]
                    .stable
                    .latest_at_or_before(epoch)
                    .cloned(),
                None => self.hosts[i].stable.latest_cloned(),
            };
            let restored_seq = chosen.as_ref().map_or(0, |c| c.seq());
            let payload = match chosen {
                Some(ckpt) => {
                    CheckpointPayload::from_checkpoint(&ckpt).expect("stable decodes")
                }
                None => {
                    // No stable checkpoint yet: restart from the initial
                    // state (all progress lost).
                    let fresh = CounterApp::new(self.cfg.seed ^ 0xA5A5);
                    CheckpointPayload::new(
                        fresh.snapshot(),
                        synergy_mdcd::EngineSnapshot::default(),
                        Vec::new(),
                        Vec::new(),
                        SimTime::ZERO,
                    )
                }
            };
            let distance = now
                .saturating_duration_since(payload.state_time())
                .as_secs_f64();
            self.metrics.rollbacks.push(RollbackRecord {
                process: self.hosts[i].pid,
                cause: RollbackCause::Hardware,
                decision: RecoveryDecision::RollBack,
                distance_secs: distance,
                at: now,
            });
            let host = &mut self.hosts[i];
            host.app.restore(&payload.app);
            host.engine.restore(&payload.engine);
            host.sent_log = payload.sent.clone();
            host.acks.restore(payload.unacked.clone());
            // Pre-crash volatile checkpoints and receive logs belong to the
            // abandoned timeline.
            host.volatile.wipe();
            host.recv_log.clear();
            for env in &payload.unacked {
                resend.push((i, env.clone()));
            }
            restored_payloads.push((i, payload.clone()));
            // Align the engine's Ndc with the recovered stable epoch and
            // restart the TB timers.
            if self.hosts[i].tb.is_some() {
                let ndc = synergy_net::CkptSeqNo(restored_seq);
                let e = self.hosts[i]
                    .engine
                    .handle(MdcdEvent::StableCheckpointCommitted(ndc));
                self.apply_mdcd_actions(i, e, now);
                let node = self.hosts[i].node;
                let now_local = self.clocks.read(node, now);
                let actions = self.hosts[i]
                    .tb
                    .as_mut()
                    .expect("checked")
                    .handle(TbEvent::Restarted {
                        now_local,
                        ndc,
                    });
                self.apply_tb_actions(i, actions, now);
            }
            self.sim.record(
                self.host_actors[i],
                "recovery.restore",
                format!("stable state from {}", payload.state_time()),
            );
        }

        // Replay receive logs attached to volatile-copy checkpoints: a
        // message delivered after the copied state but acknowledged before
        // the sender's write is reflected as sent by the sender's restored
        // state yet absent from both the receiver's state and the unacked
        // set. The receiver saved it in its receive log; replay exactly
        // those entries the restored cut reflects as sent (and, for the
        // active process's output, only validated ones — anything else
        // would re-contaminate a restored-clean state).
        let sent_reflected = |payloads: &[(usize, CheckpointPayload)], env: &Envelope| {
            payloads.iter().any(|(j, p)| {
                self.hosts[*j].pid == env.from()
                    && p.sent
                        .iter()
                        .any(|r| Endpoint::Process(r.to) == env.to && r.seq == env.id.seq)
            })
        };
        let mut replays: Vec<(usize, Envelope)> = Vec::new();
        for (i, payload) in &restored_payloads {
            for env in &payload.replay {
                if !sent_reflected(&restored_payloads, env) {
                    continue;
                }
                if env.from() == P1ACT && env.id.seq > self.global_validated {
                    continue;
                }
                replays.push((*i, env.clone()));
            }
        }
        for (i, env) in replays {
            if let MessageBody::Application { payload, .. } = &env.body {
                self.hosts[i].app.on_message(env.from(), env.id.seq, payload);
                self.metrics.messages_replayed += 1;
                self.sim
                    .record(self.host_actors[i], "msg.replay", env.to_string());
            }
        }

        // Check the restored cut (post-replay) before any realignment.
        let restored: Vec<RestoredState> = restored_payloads
            .iter()
            .map(|(i, payload)| {
                let mut p = payload.clone();
                p.app = self.hosts[*i].app.snapshot();
                RestoredState {
                    pid: self.hosts[*i].pid,
                    role: self.hosts[*i].engine.role(),
                    synthetic_history: self.hosts[*i].synthetic_history,
                    payload: p,
                }
            })
            .collect();
        let checker = GlobalChecker::new(P1ACT);
        let v = checker.check(&restored, self.global_validated);
        self.verdicts.merge(v);

        // Re-send saved unacknowledged messages (the TB recoverability
        // rule).
        self.metrics.messages_resent += resend.len() as u64;
        for (i, env) in resend {
            self.route_only(env.clone(), now);
            self.sim
                .record(self.host_actors[i], "msg.resend", env.to_string());
        }

        // Guarded operation restarts from a common state: the shadow is
        // refreshed from the restored active replica (DESIGN.md §2 — the
        // GSU middleware re-initializes both versions from one state when
        // (re)entering guarded operation).
        if !self.hosts[0].dead && !self.hosts[1].dead {
            let act_state = self.hosts[0].app.snapshot();
            let act_sn = self.hosts[0].engine.snapshot().msg_sn;
            let sdw = &mut self.hosts[1];
            sdw.app.restore(&act_state);
            let mut snap = sdw.engine.snapshot();
            snap.msg_sn = act_sn;
            snap.vr_act = act_sn;
            snap.dirty = false;
            snap.log.clear();
            sdw.engine.restore(&snap);
            sdw.synthetic_history = true;
            self.sim.record(
                self.host_actors[1],
                "recovery.refresh",
                "shadow re-aligned to restored active state",
            );
        }
        // A dead active means the shadow must remain (or become) promoted.
        if self.hosts[0].dead && self.hosts[1].engine.role() != ProcessRole::Active {
            let plan = self.hosts[1].engine.take_over();
            if let Some(peer) = self.hosts[2].engine.as_peer_mut() {
                peer.retarget_active(P1SDW);
            }
            self.metrics.messages_resent += plan.resend.len() as u64;
            for env in plan.resend {
                self.send_envelope(1, env, now);
            }
        }
    }

    fn on_resync(&mut self, now: SimTime) {
        self.resync_pending = false;
        self.metrics.resyncs += 1;
        self.clocks.resync_all(now);
        self.sim.record(self.system_actor, "clocks.resync", "fleet resynchronized");
        // Timer deadlines are local-clock values; after slewing, their true
        // fire times change — reschedule every pending timer.
        for i in 0..3 {
            let node = self.hosts[i].node;
            let now_local = self.clocks.read(node, now);
            if let Some(tb) = self.hosts[i].tb.as_mut() {
                let actions = tb.handle(TbEvent::ResyncCompleted { now_local });
                self.apply_tb_actions(i, actions, now);
                let deadline = self.hosts[i].tb.as_ref().expect("checked").next_deadline();
                if let Some(old) = self.hosts[i].timer_event.take() {
                    self.sim.cancel(old);
                }
                if self.hosts[i].up && !self.hosts[i].dead {
                    self.schedule_tb_timer(i, deadline, now);
                }
            }
        }
    }
}

/// A configured end-to-end run.
pub struct Mission {
    system: System,
}

/// Everything a finished mission reports.
#[derive(Debug)]
pub struct MissionOutcome {
    /// Aggregated counters and rollback observations.
    pub metrics: RunMetrics,
    /// Global-state checker verdicts.
    pub verdicts: Verdicts,
    /// External messages that reached the device.
    pub device_messages: usize,
    /// Whether the shadow took over during the mission.
    pub shadow_promoted: bool,
    /// The recorded trace (empty if tracing was disabled).
    pub trace: Trace,
}

impl Mission {
    /// Prepares a mission.
    pub fn new(config: SystemConfig) -> Self {
        Mission {
            system: System::new(config),
        }
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> MissionOutcome {
        self.system.run();
        let System {
            metrics,
            verdicts,
            device_log,
            sim,
            hosts,
            ..
        } = self.system;
        MissionOutcome {
            metrics,
            verdicts,
            device_messages: device_log.len(),
            shadow_promoted: hosts[1].engine.role() == ProcessRole::Active
                || hosts[1].dead,
            trace: sim.trace_ref().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scheme, SystemConfig};

    fn base() -> crate::config::SystemConfigBuilder {
        SystemConfig::builder()
            .seed(7)
            .duration_secs(120.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(6.0)
    }

    #[test]
    fn fault_free_coordinated_run_is_clean() {
        let outcome = Mission::new(base().scheme(Scheme::Coordinated).build()).run();
        assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts.violations);
        assert!(outcome.metrics.stable_commits > 0, "TB must checkpoint");
        assert!(outcome.metrics.at_runs > 0, "external messages must be tested");
        assert_eq!(outcome.metrics.at_failures, 0);
        assert!(outcome.device_messages > 0);
        assert!(!outcome.shadow_promoted);
    }

    #[test]
    fn software_fault_triggers_takeover_and_recovers() {
        let outcome = Mission::new(
            base()
                .scheme(Scheme::Coordinated)
                .software_fault_at_secs(40.0)
                .build(),
        )
        .run();
        assert!(outcome.shadow_promoted, "shadow must take over");
        assert_eq!(outcome.metrics.software_recoveries, 1);
        assert!(outcome.metrics.at_failures >= 1);
        assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts.violations);
        assert!(
            outcome.device_messages > 0,
            "external service continues after takeover"
        );
    }

    #[test]
    fn hardware_fault_recovers_consistently_under_coordination() {
        let outcome = Mission::new(
            base()
                .scheme(Scheme::Coordinated)
                .hardware_fault_at_secs(70.0)
                .build(),
        )
        .run();
        assert_eq!(outcome.metrics.hardware_recoveries, 1);
        assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts.violations);
        let distances = outcome.metrics.hardware_rollback_distances();
        assert_eq!(distances.len(), 3, "all three processes roll back");
        for d in distances {
            assert!(d < 120.0, "rollback bounded by mission length");
        }
    }

    #[test]
    fn naive_combination_violates_validity() {
        // Find a seed where the fault lands while P2 is dirty — with a
        // 60/min internal rate P2 is dirty most of the time.
        let mut violated = false;
        for seed in 0..10 {
            let outcome = Mission::new(
                base()
                    .seed(seed)
                    .scheme(Scheme::Naive)
                    .hardware_fault_at_secs(71.0)
                    .build(),
            )
            .run();
            if !outcome.verdicts.of("validity-self").is_empty() {
                violated = true;
                break;
            }
        }
        assert!(
            violated,
            "naive combination must exhibit the Fig. 4(a) validity loss"
        );
    }

    #[test]
    fn write_through_recovers_but_more_expensively() {
        let outcome = Mission::new(
            base()
                .scheme(Scheme::WriteThrough)
                .hardware_fault_at_secs(70.0)
                .build(),
        )
        .run();
        assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts.violations);
        assert!(outcome.metrics.stable_commits > 0);
        assert_eq!(outcome.metrics.hardware_recoveries, 1);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let o = Mission::new(
                base()
                    .seed(seed)
                    .scheme(Scheme::Coordinated)
                    .hardware_fault_at_secs(50.0)
                    .software_fault_at_secs(90.0)
                    .build(),
            )
            .run();
            (
                o.metrics.messages_sent,
                o.metrics.stable_commits,
                o.device_messages,
                o.metrics.hardware_rollback_distances(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn coordinated_beats_write_through_on_rollback_distance() {
        // The headline comparison (Fig. 7), run below the model's crossover
        // interval Δ < 2/(λi+λv): internal messages 60/h, validations
        // ~2+/min, Δ = 2s.
        let mean = |scheme| {
            let mut total = 0.0;
            let mut n = 0u32;
            for seed in 0..8 {
                let o = Mission::new(
                    SystemConfig::builder()
                        .seed(seed)
                        .scheme(scheme)
                        .duration_secs(400.0)
                        .internal_rate_per_min(1.0)
                        .external_rate_per_min(2.0)
                        .tb_interval_secs(2.0)
                        .hardware_fault_at_secs(310.0)
                        .trace(false)
                        .build(),
                )
                .run();
                for d in o.metrics.hardware_rollback_distances() {
                    total += d;
                    n += 1;
                }
            }
            total / f64::from(n)
        };
        let co = mean(Scheme::Coordinated);
        let wt = mean(Scheme::WriteThrough);
        assert!(
            co < wt,
            "coordinated ({co:.1}s) must beat write-through ({wt:.1}s)"
        );
    }

    #[test]
    fn software_then_hardware_fault_sequence_survives() {
        let outcome = Mission::new(
            base()
                .scheme(Scheme::Coordinated)
                .software_fault_at_secs(30.0)
                .hardware_fault_at_secs(80.0)
                .build(),
        )
        .run();
        assert_eq!(outcome.metrics.software_recoveries, 1);
        assert_eq!(outcome.metrics.hardware_recoveries, 1);
        assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts.violations);
    }

    #[test]
    fn crash_of_each_node_is_survivable() {
        for node in 0..3usize {
            let outcome = Mission::new(
                base()
                    .scheme(Scheme::Coordinated)
                    .hardware_fault(crate::faults::HardwareFault {
                        at: SimTime::from_secs_f64(60.0),
                        node,
                    })
                    .build(),
            )
            .run();
            assert!(
                outcome.verdicts.all_hold(),
                "node {node}: {:?}",
                outcome.verdicts.violations
            );
            assert_eq!(outcome.metrics.hardware_recoveries, 1, "node {node}");
        }
    }
}
