//! Scheduled fault injection.

use synergy_des::SimTime;

/// Activation of the low-confidence version's design fault: every external
/// message `P1act` produces after `at` fails its acceptance test until
/// recovery replaces the version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoftwareFault {
    /// Activation instant.
    pub at: SimTime,
}

/// A transient hardware fault crashing one node: volatile storage is lost,
/// any in-flight stable write is torn, and the system performs a global
/// rollback to stable checkpoints after the configured recovery delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareFault {
    /// Crash instant.
    pub at: SimTime,
    /// Node index (0 = `P1act`, 1 = `P1sdw`, 2 = `P2`).
    pub node: usize,
}

/// The fault schedule of one mission.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// At most one software-fault activation (guarded operation ends at the
    /// first takeover).
    pub software: Option<SoftwareFault>,
    /// Any number of hardware faults, in any order.
    pub hardware: Vec<HardwareFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Validates node indices.
    ///
    /// # Panics
    ///
    /// Panics if any hardware fault names a node outside `0..3`.
    pub fn validate(&self) {
        for f in &self.hardware {
            assert!(f.node < 3, "node index {} out of range", f.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let p = FaultPlan::none();
        assert!(p.software.is_none());
        assert!(p.hardware.is_empty());
        p.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_rejected() {
        let p = FaultPlan {
            software: None,
            hardware: vec![HardwareFault {
                at: SimTime::ZERO,
                node: 9,
            }],
        };
        p.validate();
    }
}
