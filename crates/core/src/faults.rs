//! Scheduled fault injection.

use core::fmt;

use synergy_des::SimTime;

/// The three nodes of the paper's system, naming the `usize` indices used
/// by [`HardwareFault::node`].
///
/// Both hardware-fault consumers share this mapping: the simulator's
/// injector (crash a modelled node) and the cluster runtime's kill scheduler
/// (SIGKILL a real OS process), so a [`FaultPlan`] means the same thing in
/// either world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// Node 0, hosting `P1act` (the active variant of component 1).
    P1Act = 0,
    /// Node 1, hosting `P1sdw` (the shadow variant of component 1).
    P1Sdw = 1,
    /// Node 2, hosting `P2` (component 2).
    P2 = 2,
}

impl NodeId {
    /// All nodes, in index order.
    pub const ALL: [NodeId; 3] = [NodeId::P1Act, NodeId::P1Sdw, NodeId::P2];

    /// The node's fault-plan index (`0 = P1act, 1 = P1sdw, 2 = P2`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The node hosting fault-plan index `index`, or `None` when out of
    /// range.
    pub fn from_index(index: usize) -> Option<NodeId> {
        NodeId::ALL.get(index).copied()
    }

    /// The name of the process hosted on this node.
    pub fn process_name(self) -> &'static str {
        match self {
            NodeId::P1Act => "P1act",
            NodeId::P1Sdw => "P1sdw",
            NodeId::P2 => "P2",
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}({})", self.index(), self.process_name())
    }
}

/// Activation of the low-confidence version's design fault: every external
/// message `P1act` produces after `at` fails its acceptance test until
/// recovery replaces the version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoftwareFault {
    /// Activation instant.
    pub at: SimTime,
}

/// A transient hardware fault crashing one node: volatile storage is lost,
/// any in-flight stable write is torn, and the system performs a global
/// rollback to stable checkpoints after the configured recovery delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareFault {
    /// Crash instant.
    pub at: SimTime,
    /// Node index — see [`NodeId`] for the mapping
    /// (`0 = P1act, 1 = P1sdw, 2 = P2`).
    pub node: usize,
}

impl HardwareFault {
    /// A crash of `node` at `at`.
    pub fn on(node: NodeId, at: SimTime) -> Self {
        HardwareFault {
            at,
            node: node.index(),
        }
    }

    /// The crashed node as a [`NodeId`], if the index is valid.
    pub fn node_id(&self) -> Option<NodeId> {
        NodeId::from_index(self.node)
    }
}

/// The fault schedule of one mission.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// At most one software-fault activation (guarded operation ends at the
    /// first takeover).
    pub software: Option<SoftwareFault>,
    /// Any number of hardware faults, in any order.
    pub hardware: Vec<HardwareFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Validates node indices, returning a structured error instead of
    /// aborting so chaos/cluster callers can surface malformed plans.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::NodeOutOfRange`] if any hardware fault names
    /// a node outside the [`NodeId`] mapping.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for f in &self.hardware {
            if f.node_id().is_none() {
                return Err(FaultPlanError::NodeOutOfRange { node: f.node });
            }
        }
        Ok(())
    }
}

/// Structural problems in a [`FaultPlan`] or regime plan, reported as typed
/// errors rather than panics so callers (chaos generator, cluster
/// orchestrator, CLI flag parsing) can propagate them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A fault names a node index outside the [`NodeId`] mapping.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
    },
    /// A probability or magnitude knob is outside its valid range.
    RateOutOfRange {
        /// Which knob.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { node } => {
                write!(f, "node index {node} out of range (valid: 0..=2)")
            }
            FaultPlanError::RateOutOfRange { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let p = FaultPlan::none();
        assert!(p.software.is_none());
        assert!(p.hardware.is_empty());
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn node_id_round_trips_the_index_mapping() {
        for node in NodeId::ALL {
            assert_eq!(NodeId::from_index(node.index()), Some(node));
            let f = HardwareFault::on(node, SimTime::from_secs_f64(1.0));
            assert_eq!(f.node, node.index());
            assert_eq!(f.node_id(), Some(node));
        }
        assert_eq!(NodeId::P1Act.index(), 0);
        assert_eq!(NodeId::P1Sdw.index(), 1);
        assert_eq!(NodeId::P2.index(), 2);
        assert_eq!(NodeId::from_index(3), None);
        assert_eq!(NodeId::P2.process_name(), "P2");
        assert_eq!(NodeId::P2.to_string(), "node2(P2)");
    }

    #[test]
    fn bad_node_rejected_as_typed_error() {
        let p = FaultPlan {
            software: None,
            hardware: vec![HardwareFault {
                at: SimTime::ZERO,
                node: 9,
            }],
        };
        let err = p.validate().unwrap_err();
        assert_eq!(err, FaultPlanError::NodeOutOfRange { node: 9 });
        assert!(err.to_string().contains("out of range"));
    }
}
