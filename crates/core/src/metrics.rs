//! Run metrics: checkpoint counts, recoveries, rollback distances, overhead.

use synergy_des::{SimDuration, SimTime};
use synergy_mdcd::{CheckpointKind, RecoveryDecision};
use synergy_net::ProcessId;

/// Why a rollback happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollbackCause {
    /// A node crash forced a global rollback to stable checkpoints.
    Hardware,
    /// An acceptance-test failure triggered MDCD error recovery.
    Software,
}

/// One rollback observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RollbackRecord {
    /// The process that rolled back (or forward).
    pub process: ProcessId,
    /// What triggered it.
    pub cause: RollbackCause,
    /// Local decision taken.
    pub decision: RecoveryDecision,
    /// Computation undone, in seconds: recovery instant minus the timestamp
    /// of the restored state (zero for roll-forward).
    pub distance_secs: f64,
    /// When the recovery happened.
    pub at: SimTime,
}

/// Aggregated counters for one mission.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Volatile checkpoints established, by kind.
    pub type1_ckpts: u64,
    /// Type-2 volatile checkpoints (original protocol only).
    pub type2_ckpts: u64,
    /// `P1act` pseudo checkpoints (modified protocol only).
    pub pseudo_ckpts: u64,
    /// Stable checkpoints committed.
    pub stable_commits: u64,
    /// Adapted-TB abort-and-replace events inside blocking periods.
    pub stable_replacements: u64,
    /// Stable writes torn by crashes.
    pub torn_writes: u64,
    /// Acceptance tests run.
    pub at_runs: u64,
    /// Acceptance tests failed.
    pub at_failures: u64,
    /// Application messages handed to the transport.
    pub messages_sent: u64,
    /// Application messages delivered to applications.
    pub messages_delivered: u64,
    /// Messages re-sent during recoveries (unacked replay + shadow log).
    pub messages_resent: u64,
    /// Receive-log entries replayed at hardware recoveries.
    pub messages_replayed: u64,
    /// Total blocking time across processes.
    pub blocking_total: SimDuration,
    /// Number of blocking periods entered.
    pub blocking_periods: u64,
    /// Timer resynchronizations performed.
    pub resyncs: u64,
    /// Bytes a full-image-per-commit scheme writes to stable storage
    /// (the serialized checkpoint state, summed over commits). Only
    /// accounted when
    /// [`checkpoint_delta_k`](crate::SystemConfigBuilder::checkpoint_delta_k)
    /// is set; zero otherwise.
    pub stable_bytes_full: u64,
    /// Bytes the incremental chain format writes for the same commits
    /// (full image every `k`, dirty-region deltas between). Zero unless
    /// delta accounting is enabled.
    pub stable_bytes_delta: u64,
    /// Completed software (MDCD) recoveries.
    pub software_recoveries: u64,
    /// Completed hardware (global rollback) recoveries.
    pub hardware_recoveries: u64,
    /// Every rollback observation.
    pub rollbacks: Vec<RollbackRecord>,
    /// Messages held at engines during blocking periods and released later.
    pub dirty_fallbacks: u64,
    /// True-time latency from unmasked-regime activation to the first
    /// acceptance-test catch, when both happened.
    pub regime_detection_secs: Option<f64>,
}

impl RunMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Adds a volatile-checkpoint observation.
    pub fn count_volatile(&mut self, kind: CheckpointKind) {
        match kind {
            CheckpointKind::Type1 => self.type1_ckpts += 1,
            CheckpointKind::Type2 => self.type2_ckpts += 1,
            CheckpointKind::Pseudo => self.pseudo_ckpts += 1,
        }
    }

    /// Total volatile checkpoints.
    pub fn volatile_total(&self) -> u64 {
        self.type1_ckpts + self.type2_ckpts + self.pseudo_ckpts
    }

    /// Rollback distances (seconds) due to hardware faults.
    pub fn hardware_rollback_distances(&self) -> Vec<f64> {
        self.rollbacks
            .iter()
            .filter(|r| r.cause == RollbackCause::Hardware)
            .map(|r| r.distance_secs)
            .collect()
    }

    /// Mean hardware rollback distance (seconds); `None` with no samples.
    pub fn mean_hardware_rollback(&self) -> Option<f64> {
        let d = self.hardware_rollback_distances();
        if d.is_empty() {
            None
        } else {
            Some(d.iter().sum::<f64>() / d.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_counting_by_kind() {
        let mut m = RunMetrics::new();
        m.count_volatile(CheckpointKind::Type1);
        m.count_volatile(CheckpointKind::Type1);
        m.count_volatile(CheckpointKind::Pseudo);
        assert_eq!(m.type1_ckpts, 2);
        assert_eq!(m.pseudo_ckpts, 1);
        assert_eq!(m.volatile_total(), 3);
    }

    #[test]
    fn hardware_rollback_stats() {
        let mut m = RunMetrics::new();
        assert_eq!(m.mean_hardware_rollback(), None);
        for (cause, d) in [
            (RollbackCause::Hardware, 4.0),
            (RollbackCause::Software, 100.0),
            (RollbackCause::Hardware, 6.0),
        ] {
            m.rollbacks.push(RollbackRecord {
                process: ProcessId(1),
                cause,
                decision: RecoveryDecision::RollBack,
                distance_secs: d,
                at: SimTime::ZERO,
            });
        }
        assert_eq!(m.hardware_rollback_distances(), vec![4.0, 6.0]);
        assert_eq!(m.mean_hardware_rollback(), Some(5.0));
    }
}
