//! Bounded exhaustive exploration of MDCD protocol interleavings.
//!
//! The paper's concluding remarks name "formally validating the
//! protocol-coordination approach" as current work. This module contributes
//! a bounded model checker for the error-containment layer: for a small
//! scripted workload it enumerates **every** network delivery interleaving
//! (respecting per-link FIFO order), and checks, in every reachable state:
//!
//! 1. **dirty-bit truthfulness** — a process's dirty bit is set iff its
//!    state reflects a message not yet covered by a validation it has
//!    learned about;
//! 2. **checkpoint cleanliness** — every volatile checkpoint captures a
//!    non-contaminated state (its receipts are all globally validated);
//! 3. **recovery safety** — software error recovery started *now* restores
//!    the shadow and peer to states reflecting only globally validated
//!    messages, with every unvalidated message the peer loses covered by
//!    the shadow's re-send set.
//!
//! The state space is deduplicated on a full structural fingerprint, so the
//! search is exhaustive up to the scripted horizon, not a random sample.

use std::collections::{HashSet, VecDeque};

use synergy_mdcd::{
    Action, ActiveEngine, Event, MdcdConfig, OutboundMessage, PeerEngine, RecoveryDecision,
    ShadowEngine,
};
use synergy_net::{Endpoint, Envelope, MessageBody, ProcessId};
use synergy_storage::codec;

use crate::system::{DEVICE, P1ACT, P1SDW, P2};

/// One scripted application event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Component 1 (both replicas) produces a message.
    Component1 {
        /// External (acceptance-tested) or internal.
        external: bool,
    },
    /// Component 2 (`P2`) produces a message.
    Component2 {
        /// External (acceptance-tested) or internal.
        external: bool,
    },
}

/// The result of an exhaustive exploration.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// Invariant violations found (empty = all interleavings safe).
    pub violations: Vec<String>,
    /// Whether the exploration was truncated by the state budget.
    pub truncated: bool,
}

impl ExplorationReport {
    /// Whether every checked state satisfied every invariant.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

#[derive(Clone)]
struct ExpState {
    act: ActiveEngine,
    sdw: ShadowEngine,
    peer: PeerEngine,
    /// Receipts (from, seq) per process index 0..3.
    receipts: [Vec<(u32, u64)>; 3],
    /// Latest volatile checkpoint per process: (receipts at ckpt, engine
    /// dirty flag at ckpt, vr at ckpt, logged seqs at ckpt).
    volatile: [Option<VolatileSnap>; 3],
    /// Per-link FIFO queues of in-flight envelopes.
    links: Vec<Link>,
    /// Next scripted step.
    next_step: usize,
    /// Ground truth: highest validated sequence number of the component-1
    /// message stream.
    validated: u64,
    /// Payload counter so replica payloads stay aligned.
    produced: u64,
}

type Link = (ProcessId, ProcessId, VecDeque<Envelope>);

#[derive(Clone)]
struct VolatileSnap {
    receipts: Vec<(u32, u64)>,
    engine: synergy_mdcd::EngineSnapshot,
}

impl ExpState {
    fn new() -> Self {
        ExpState {
            act: ActiveEngine::new(MdcdConfig::modified(), P1ACT, P1SDW, P2),
            sdw: ShadowEngine::new(MdcdConfig::modified(), P1SDW, P2),
            peer: PeerEngine::new(MdcdConfig::modified(), P2, P1ACT, P1SDW),
            receipts: [Vec::new(), Vec::new(), Vec::new()],
            volatile: [None, None, None],
            links: Vec::new(),
            next_step: 0,
            validated: 0,
            produced: 0,
        }
    }

    fn idx(pid: ProcessId) -> usize {
        match pid {
            P1ACT => 0,
            P1SDW => 1,
            _ => 2,
        }
    }

    /// A structural fingerprint for deduplication.
    fn fingerprint(&self) -> Vec<u8> {
        type LinkKey = (u32, u32, Vec<(u64, u32)>);
        let links: Vec<LinkKey> = self
            .links
            .iter()
            .map(|(a, b, q)| {
                (
                    a.0,
                    b.0,
                    q.iter().map(|e| (e.id.seq.0, body_tag(&e.body))).collect(),
                )
            })
            .collect();
        let snaps = [
            self.act.snapshot(),
            self.sdw.snapshot(),
            self.peer.snapshot(),
        ];
        let snap_key: Vec<(bool, Option<bool>, u64, u64, usize, bool)> = snaps
            .iter()
            .map(|s| {
                (
                    s.dirty,
                    s.pseudo_dirty,
                    s.msg_sn.0,
                    s.vr_act.0,
                    s.log.len(),
                    s.promoted,
                )
            })
            .collect();
        let vol_key: Vec<Option<(usize, bool, u64)>> = self
            .volatile
            .iter()
            .map(|v| {
                v.as_ref()
                    .map(|v| (v.receipts.len(), v.engine.dirty, v.engine.msg_sn.0))
            })
            .collect();
        codec::to_bytes(&(
            links,
            snap_key,
            vol_key,
            self.receipts.clone(),
            self.next_step as u64,
            self.validated,
        ))
        .expect("fingerprint encodes")
    }

    fn enqueue(&mut self, env: Envelope) {
        let (from, to) = match env.to {
            Endpoint::Process(p) => (env.from(), p),
            Endpoint::Device(_) => return, // devices are sinks
        };
        if let Some((_, _, q)) = self
            .links
            .iter_mut()
            .find(|(a, b, _)| *a == from && *b == to)
        {
            q.push_back(env);
        } else {
            let mut q = VecDeque::new();
            q.push_back(env);
            self.links.push((from, to, q));
        }
    }

    fn apply_actions(&mut self, host: usize, actions: Vec<Action>, violations: &mut Vec<String>) {
        for action in actions {
            match action {
                Action::Send(env) => {
                    if let MessageBody::PassedAt { msg_sn, .. } = env.body {
                        self.validated = self.validated.max(msg_sn.0);
                    }
                    self.enqueue(env);
                }
                Action::TakeCheckpoint { engine, .. } => {
                    self.volatile[host] = Some(VolatileSnap {
                        receipts: self.receipts[host].clone(),
                        engine,
                    });
                }
                Action::DeliverToApp(env) => {
                    if let MessageBody::Application { .. } = env.body {
                        self.receipts[host].push((env.from().0, env.id.seq.0));
                    }
                }
                Action::AtPerformed { .. } => {}
                Action::SoftwareErrorDetected => {
                    violations.push("unexpected software error in fault-free scenario".into());
                }
            }
        }
    }

    /// Feeds one scripted step (both replicas for component 1).
    fn run_step(&mut self, step: Step, violations: &mut Vec<String>) {
        self.produced += 1;
        let payload = self.produced.to_le_bytes().to_vec();
        match step {
            Step::Component1 { external } => {
                let msg = |to| OutboundMessage {
                    to,
                    payload: payload.clone(),
                    external,
                    at_pass: true,
                };
                let to = if external {
                    Endpoint::Device(DEVICE)
                } else {
                    Endpoint::Process(P2)
                };
                let a = self.act.handle(Event::AppSend(msg(to)));
                self.apply_actions(0, a, violations);
                let s = self.sdw.handle(Event::AppSend(msg(to)));
                self.apply_actions(1, s, violations);
            }
            Step::Component2 { external } => {
                let to = if external {
                    Endpoint::Device(DEVICE)
                } else {
                    Endpoint::Process(P1ACT)
                };
                let p = self.peer.handle(Event::AppSend(OutboundMessage {
                    to,
                    payload,
                    external,
                    at_pass: true,
                }));
                self.apply_actions(2, p, violations);
            }
        }
    }

    /// Delivers the head of link `i`.
    fn deliver(&mut self, i: usize, violations: &mut Vec<String>) {
        let (_, to, env) = {
            let (a, b, q) = &mut self.links[i];
            let env = q.pop_front().expect("non-empty link");
            (*a, *b, env)
        };
        self.links.retain(|(_, _, q)| !q.is_empty());
        let host = Self::idx(to);
        let actions = match host {
            0 => self.act.handle(Event::Deliver(env)),
            1 => self.sdw.handle(Event::Deliver(env)),
            _ => self.peer.handle(Event::Deliver(env)),
        };
        self.apply_actions(host, actions, violations);
    }

    // --- Invariants -----------------------------------------------------

    fn check_invariants(&self, violations: &mut Vec<String>) {
        self.check_dirty_truthfulness(violations);
        self.check_checkpoint_cleanliness(violations);
        self.check_recovery_safety(violations);
    }

    /// A receipt from the active stream is "covered" when a validation with
    /// at least that sequence number has happened (ground truth).
    fn unvalidated_receipts(&self, receipts: &[(u32, u64)], validated: u64) -> usize {
        receipts
            .iter()
            .filter(|(from, seq)| *from == P1ACT.0 && *seq > validated)
            .count()
    }

    fn check_dirty_truthfulness(&self, violations: &mut Vec<String>) {
        // P2's dirty bit must be set whenever its state reflects a message
        // beyond the *globally* validated horizon (its local knowledge can
        // only lag, so local-clean implies globally covered).
        let unvalidated = self.unvalidated_receipts(&self.receipts[2], self.validated);
        if unvalidated > 0 && !self.peer.dirty_bit() {
            violations.push(format!(
                "P2 clean while reflecting {unvalidated} unvalidated messages"
            ));
        }
    }

    fn check_checkpoint_cleanliness(&self, violations: &mut Vec<String>) {
        for (i, name) in [(1usize, "P1sdw"), (2, "P2")] {
            if let Some(v) = &self.volatile[i] {
                if v.engine.dirty {
                    violations.push(format!("{name} checkpoint captured a dirty control state"));
                }
            }
        }
    }

    fn check_recovery_safety(&self, violations: &mut Vec<String>) {
        // Simulate software recovery from the current state and verify the
        // restored states reflect only validated messages.
        let mut sdw = self.sdw.clone();
        let mut peer = self.peer.clone();
        let mut sdw_receipts = self.receipts[1].clone();
        let mut peer_receipts = self.receipts[2].clone();
        if sdw.recovery_decision() == RecoveryDecision::RollBack {
            match &self.volatile[1] {
                Some(v) => {
                    sdw.restore(&v.engine);
                    sdw_receipts = v.receipts.clone();
                }
                None => {
                    violations.push("P1sdw must roll back but has no checkpoint".into());
                    return;
                }
            }
        }
        if peer.recovery_decision() == RecoveryDecision::RollBack {
            match &self.volatile[2] {
                Some(v) => {
                    peer.restore(&v.engine);
                    peer_receipts = v.receipts.clone();
                }
                None => {
                    violations.push("P2 must roll back but has no checkpoint".into());
                    return;
                }
            }
        }
        let n = self.unvalidated_receipts(&peer_receipts, self.validated);
        if n > 0 {
            violations.push(format!(
                "after recovery P2 still reflects {n} unvalidated messages"
            ));
        }
        let n = self.unvalidated_receipts(&sdw_receipts, self.validated);
        if n > 0 {
            violations.push(format!(
                "after recovery P1sdw still reflects {n} unvalidated messages"
            ));
        }
        // Coverage: every component-1 message the peer lost in its rollback
        // (reflected before, not after) and never validated must be covered
        // either by the shadow's re-send set or by re-execution — the
        // promoted shadow resumes from its restored state and regenerates
        // every sequence number beyond its restored send counter.
        let regenerate_after = sdw.snapshot().msg_sn.0;
        let plan = sdw.take_over();
        let resend: HashSet<u64> = plan.resend.iter().map(|e| e.id.seq.0).collect();
        for (from, seq) in &self.receipts[2] {
            if *from != P1ACT.0 || *seq <= self.validated {
                continue;
            }
            let still_reflected = peer_receipts.iter().any(|r| r == &(*from, *seq));
            if !still_reflected && !resend.contains(seq) && *seq <= regenerate_after {
                violations.push(format!(
                    "P2 lost unvalidated message sn{seq}; neither re-sent nor regenerable"
                ));
            }
        }
    }
}

fn body_tag(body: &MessageBody) -> u32 {
    match body {
        MessageBody::Application { dirty, .. } => 1 + u32::from(*dirty),
        MessageBody::External { .. } => 3,
        MessageBody::PassedAt { .. } => 4,
        MessageBody::Ack { .. } => 5,
    }
}

/// Exhaustively explores all interleavings of `scenario`.
///
/// Scripted steps execute in order, but every network delivery may
/// interleave arbitrarily with them and with each other (per-link FIFO is
/// respected, as the transport guarantees). `max_states` bounds the search;
/// a truncated report sets [`ExplorationReport::truncated`].
pub fn explore(scenario: &[Step], max_states: usize) -> ExplorationReport {
    let mut report = ExplorationReport::default();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut frontier = vec![ExpState::new()];
    seen.insert(frontier[0].fingerprint());

    while let Some(state) = frontier.pop() {
        report.states += 1;
        if report.states > max_states {
            report.truncated = true;
            break;
        }
        state.check_invariants(&mut report.violations);
        if report.violations.len() > 16 {
            break; // enough evidence
        }

        // Branch 1: execute the next scripted step.
        if state.next_step < scenario.len() {
            let mut next = state.clone();
            next.run_step(scenario[next.next_step], &mut report.violations);
            next.next_step += 1;
            report.transitions += 1;
            if seen.insert(next.fingerprint()) {
                frontier.push(next);
            }
        }
        // Branch 2..n: deliver the head of any non-empty link.
        for i in 0..state.links.len() {
            let mut next = state.clone();
            next.deliver(i, &mut report.violations);
            report.transitions += 1;
            if seen.insert(next.fingerprint()) {
                frontier.push(next);
            }
        }
    }
    report
}

/// The default validation scenario: two contamination/validation cycles
/// with interleaved peer traffic (the Figure 1/3 message pattern).
pub fn default_scenario() -> Vec<Step> {
    vec![
        Step::Component1 { external: false },
        Step::Component2 { external: false },
        Step::Component1 { external: true },
        Step::Component1 { external: false },
        Step::Component2 { external: true },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_safe_in_all_interleavings() {
        let report = explore(&default_scenario(), 2_000_000);
        assert!(
            report.all_hold(),
            "states={} violations={:?}",
            report.states,
            report.violations
        );
        assert!(
            report.states > 100,
            "exploration must branch: {}",
            report.states
        );
    }

    #[test]
    fn single_message_scenario_is_tiny_and_safe() {
        let report = explore(&[Step::Component1 { external: false }], 10_000);
        assert!(report.all_hold(), "{:?}", report.violations);
        assert!(report.states >= 3);
    }

    #[test]
    fn peer_heavy_scenario_is_safe() {
        let scenario = vec![
            Step::Component2 { external: false },
            Step::Component2 { external: false },
            Step::Component1 { external: false },
            Step::Component2 { external: true },
        ];
        let report = explore(&scenario, 2_000_000);
        assert!(report.all_hold(), "{:?}", report.violations);
    }

    #[test]
    fn truncation_is_reported() {
        let report = explore(&default_scenario(), 10);
        assert!(report.truncated);
        assert!(!report.all_hold());
    }

    #[test]
    fn deduplication_keeps_search_finite() {
        // Re-exploring the same scenario yields identical counts.
        let a = explore(&default_scenario(), 2_000_000);
        let b = explore(&default_scenario(), 2_000_000);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }
}
