//! The hosted application model.
//!
//! The paper's testbed ran real (spacecraft) application software; here we
//! substitute a deterministic synthetic application whose state folds in
//! every message it processes, so that two replicas fed identical inputs
//! stay bit-identical and global-state checkers can reconstruct exactly
//! which messages a recovered state reflects (DESIGN.md §2).

use synergy_codec::codec_struct;
use synergy_net::{MsgSeqNo, ProcessId};
use synergy_storage::codec;

/// The behaviour the protocol stack requires of a hosted application.
///
/// Implementations must be *deterministic*: the same sequence of
/// `on_message` / `produce_*` calls from the same initial state must yield
/// identical states and payloads, because the shadow replays the active
/// process's input stream.
pub trait Application: Send {
    /// Serializes the full application state.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a snapshot produced by
    /// [`snapshot`](Application::snapshot).
    ///
    /// # Panics
    ///
    /// Implementations may panic on snapshots they did not produce; the
    /// storage layer's CRC protects this path.
    fn restore(&mut self, bytes: &[u8]);

    /// Processes one delivered application message.
    fn on_message(&mut self, from: ProcessId, seq: MsgSeqNo, payload: &[u8]);

    /// Produces the next internal (process-to-process) payload.
    fn produce_internal(&mut self) -> Vec<u8>;

    /// Produces the next external (device-bound) payload.
    fn produce_external(&mut self) -> Vec<u8>;

    /// The acceptance test: validates an external payload by reasonableness
    /// checking (paper §2.1 — external messages carry control commands that
    /// simple logic checks can validate).
    fn acceptance_test(&self, payload: &[u8]) -> bool;

    /// Switches the design-fault injection on or off. The default
    /// implementation ignores the request (a correct version has no fault to
    /// activate).
    fn set_faulty(&mut self, _faulty: bool) {}
}

/// One record of a processed message, kept for the global-state checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReceiptRecord {
    /// The sending process.
    pub from: ProcessId,
    /// The sender-assigned sequence number.
    pub seq: MsgSeqNo,
}

/// Serializable state of [`CounterApp`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterState {
    /// Number of state transitions performed.
    pub steps: u64,
    /// Running mix of everything processed (replica-equality witness).
    pub acc: u64,
    /// Internal payloads produced.
    pub internals_produced: u64,
    /// External payloads produced.
    pub externals_produced: u64,
    /// Every message this state reflects, in processing order.
    pub received: Vec<ReceiptRecord>,
}

codec_struct!(ReceiptRecord { from, seq });
codec_struct!(CounterState {
    steps,
    acc,
    internals_produced,
    externals_produced,
    received
});

/// A deterministic counter application with checksummed external messages
/// and an injectable design fault.
///
/// * Internal payloads encode the producing step and the running
///   accumulator, so receivers mix in genuinely state-dependent data.
/// * External payloads end in a checksum byte; the acceptance test verifies
///   it. When the design fault is active the checksum is corrupted, so the
///   next acceptance test fails — modelling a low-confidence upgraded
///   version whose error is AT-detectable (paper §2.1's key assumption).
///
/// # Example
///
/// ```rust
/// use synergy::app::{Application, CounterApp};
///
/// let mut good = CounterApp::new(7);
/// let payload = good.produce_external();
/// assert!(good.acceptance_test(&payload));
///
/// let mut bad = CounterApp::new(7);
/// bad.set_faulty(true);
/// let payload = bad.produce_external();
/// assert!(!bad.acceptance_test(&payload));
/// ```
#[derive(Clone, Debug)]
pub struct CounterApp {
    state: CounterState,
    faulty: bool,
}

impl CounterApp {
    /// Creates an application whose accumulator starts at `salt` (give both
    /// replicas the same salt).
    pub fn new(salt: u64) -> Self {
        CounterApp {
            state: CounterState {
                acc: mix(salt, 0),
                ..CounterState::default()
            },
            faulty: false,
        }
    }

    /// Read access to the full state (checkers use this).
    pub fn state(&self) -> &CounterState {
        &self.state
    }

    /// Whether the design fault is currently active.
    pub fn is_faulty(&self) -> bool {
        self.faulty
    }

    /// Decodes a snapshot back into a state (for checkers inspecting
    /// checkpoints).
    pub fn decode_state(bytes: &[u8]) -> Option<CounterState> {
        codec::from_bytes(bytes).ok()
    }
}

impl Application for CounterApp {
    fn snapshot(&self) -> Vec<u8> {
        codec::to_bytes(&self.state).expect("CounterState always encodes")
    }

    fn restore(&mut self, bytes: &[u8]) {
        self.state = codec::from_bytes(bytes).expect("snapshot round-trip");
    }

    fn on_message(&mut self, from: ProcessId, seq: MsgSeqNo, payload: &[u8]) {
        self.state.steps += 1;
        for &b in payload {
            self.state.acc = mix(self.state.acc, u64::from(b));
        }
        self.state.acc = mix(self.state.acc, u64::from(from.0));
        self.state.acc = mix(self.state.acc, seq.0);
        self.state.received.push(ReceiptRecord { from, seq });
    }

    fn produce_internal(&mut self) -> Vec<u8> {
        self.state.steps += 1;
        self.state.internals_produced += 1;
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&self.state.internals_produced.to_le_bytes());
        payload.extend_from_slice(&self.state.acc.to_le_bytes());
        self.state.acc = mix(self.state.acc, self.state.internals_produced);
        payload
    }

    fn produce_external(&mut self) -> Vec<u8> {
        self.state.steps += 1;
        self.state.externals_produced += 1;
        let mut payload = Vec::with_capacity(17);
        payload.extend_from_slice(&self.state.externals_produced.to_le_bytes());
        payload.extend_from_slice(&self.state.acc.to_le_bytes());
        self.state.acc = mix(self.state.acc, self.state.externals_produced);
        let mut sum = checksum(&payload);
        if self.faulty {
            // The design fault: a wrong command byte the reasonableness
            // check catches.
            sum = sum.wrapping_add(1);
        }
        payload.push(sum);
        payload
    }

    fn acceptance_test(&self, payload: &[u8]) -> bool {
        match payload.split_last() {
            Some((&sum, body)) => checksum(body) == sum,
            None => false,
        }
    }

    fn set_faulty(&mut self, faulty: bool) {
        self.faulty = faulty;
    }
}

fn checksum(bytes: &[u8]) -> u8 {
    bytes
        .iter()
        .fold(0x5Au8, |acc, &b| acc.wrapping_mul(31).wrapping_add(b))
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 32;
    x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
    x ^ (x >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_stay_identical_on_identical_inputs() {
        let mut a = CounterApp::new(1);
        let mut b = CounterApp::new(1);
        for i in 0..20 {
            a.on_message(ProcessId(3), MsgSeqNo(i), &[i as u8, 2, 3]);
            b.on_message(ProcessId(3), MsgSeqNo(i), &[i as u8, 2, 3]);
            assert_eq!(a.produce_internal(), b.produce_internal());
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn different_salts_diverge() {
        let mut a = CounterApp::new(1);
        let mut b = CounterApp::new(2);
        assert_ne!(a.produce_internal(), b.produce_internal());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut app = CounterApp::new(9);
        app.on_message(ProcessId(1), MsgSeqNo(1), &[1]);
        let snap = app.snapshot();
        app.on_message(ProcessId(1), MsgSeqNo(2), &[2]);
        let diverged = app.state().clone();
        app.restore(&snap);
        assert_ne!(*app.state(), diverged);
        assert_eq!(app.state().received.len(), 1);
    }

    #[test]
    fn acceptance_test_validates_good_payloads() {
        let mut app = CounterApp::new(3);
        for _ in 0..10 {
            let p = app.produce_external();
            assert!(app.acceptance_test(&p));
        }
    }

    #[test]
    fn fault_injection_fails_acceptance_test() {
        let mut app = CounterApp::new(3);
        app.set_faulty(true);
        let p = app.produce_external();
        assert!(!app.acceptance_test(&p));
        // Switching the fault off heals subsequent outputs.
        app.set_faulty(false);
        let p = app.produce_external();
        assert!(app.acceptance_test(&p));
    }

    #[test]
    fn faulty_version_produces_identical_internal_traffic() {
        // The design fault is only visible in external messages: the shadow
        // and active replicas must not diverge on internal traffic.
        let mut good = CounterApp::new(5);
        let mut bad = CounterApp::new(5);
        bad.set_faulty(true);
        for _ in 0..10 {
            assert_eq!(good.produce_internal(), bad.produce_internal());
        }
    }

    #[test]
    fn empty_payload_fails_acceptance_test() {
        let app = CounterApp::new(0);
        assert!(!app.acceptance_test(&[]));
    }

    #[test]
    fn receipts_record_processing_order() {
        let mut app = CounterApp::new(0);
        app.on_message(ProcessId(1), MsgSeqNo(5), &[]);
        app.on_message(ProcessId(3), MsgSeqNo(1), &[]);
        let got: Vec<(u32, u64)> = app
            .state()
            .received
            .iter()
            .map(|r| (r.from.0, r.seq.0))
            .collect();
        assert_eq!(got, vec![(1, 5), (3, 1)]);
    }

    #[test]
    fn decode_state_rejects_garbage() {
        assert!(CounterApp::decode_state(&[1, 2, 3]).is_none());
        let app = CounterApp::new(4);
        assert_eq!(
            CounterApp::decode_state(&app.snapshot()).as_ref(),
            Some(app.state())
        );
    }
}
