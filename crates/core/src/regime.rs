//! The unmasked-regime fault lattice (DESIGN.md §15).
//!
//! Every scenario before this module stayed inside the *masked* regime: the
//! acceptance test catches what the fault plan injects, recovery re-converges,
//! and the checkers stay green. This module parameterizes the four ways the
//! paper's synergy can leave that regime:
//!
//! 1. **Bad messages the AT catches** ([`BadMessagePlan`]) — the upgraded
//!    `P1act` emits corrupt external payloads at a seeded rate; the acceptance
//!    test detects them and the shadow takes over (detected, not masked).
//! 2. **AT false negatives** ([`AtCoveragePlan`]) — a seeded coverage knob on
//!    the acceptance test lets a fraction of corrupt payloads escape to the
//!    device; the device stream is diffed against an oracle run (same config,
//!    regime cleared) to count and localize every escape.
//! 3. **Clock-resync violations** ([`ResyncViolationPlan`]) — a resynchronization
//!    leaves one clock outside the δ/ρ envelope the blocking-period formula
//!    assumes, so any epoch line computed at a subsequent hardware recovery is
//!    provably stale.
//! 4. **Byzantine-lite value corruption** ([`ByzantinePlan`]) — a node flips
//!    checkpoint payload bytes *behind a valid CRC* (the record is re-encoded,
//!    so every integrity check passes); the corruption surfaces only in the
//!    device stream after the checkpoint is restored.
//!
//! Each campaign classifies into exactly one [`RegimeVerdict`]. The verdict is
//! evidence-based: injection-site counters on [`Verdicts`] plus the oracle
//! device-stream diff, never an assumption about what *should* have happened.

use std::fmt;

use synergy_des::{DetRng, SimDuration, SimTime};
use synergy_storage::Checkpoint;

use crate::checkers::Verdicts;
use crate::faults::{FaultPlanError, NodeId};
use crate::payload::CheckpointPayload;

/// XOR mask applied to the corrupted byte of a bad external payload. Chosen to
/// flip bits the checksum fold is sensitive to, so a full-coverage acceptance
/// test always catches the corruption.
pub const CORRUPTION_MASK: u8 = 0x3C;

/// Bad-message injection through the upgraded `P1act`: after `after`, each
/// external payload the active process produces is corrupted with probability
/// `rate` (drawn from the seeded `"regime"` stream).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BadMessagePlan {
    /// True time after which the software fault starts emitting bad payloads.
    pub after: SimTime,
    /// Per-external-message corruption probability in `[0, 1]`.
    pub rate: f64,
}

/// Acceptance-test coverage knob. With probability `1 - coverage` the AT
/// misses a corrupt payload (a false negative) and the corruption escapes to
/// the device. Absent this plan, coverage is the real AT's: 1.0 for the
/// checksum-breaking corruption [`BadMessagePlan`] injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtCoveragePlan {
    /// Probability in `[0, 1]` that the AT catches a corrupt payload.
    pub coverage: f64,
}

/// A clock resynchronization that fails its contract: after `after`, each
/// resync leaves `node`'s clock `excess` *beyond* the δ envelope, violating
/// the drift bound the blocking-period formula (paper §3.2) assumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResyncViolationPlan {
    /// True time after which resynchronizations start failing.
    pub after: SimTime,
    /// How far beyond δ the victim clock lands (must be positive to violate).
    pub excess: SimDuration,
    /// Index of the node whose clock the failed resync skews.
    pub node: usize,
}

/// Byzantine-lite value corruption: at `at`, flip value bytes inside `node`'s
/// latest stable checkpoint and re-encode the record so its CRC (and every
/// downstream integrity check) remains valid. Pair with a hardware fault after
/// `at` so recovery restores the corrupted state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ByzantinePlan {
    /// True time of the corruption.
    pub at: SimTime,
    /// Index of the node whose stable store is corrupted.
    pub node: usize,
}

/// The full unmasked-regime plan carried by `SystemConfig`. All axes default
/// to `None`; a plan with every axis `None` is the masked regime and changes
/// nothing about a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RegimePlan {
    /// Bad-message injection through the active process.
    pub bad_messages: Option<BadMessagePlan>,
    /// AT false-negative knob (only meaningful alongside `bad_messages`).
    pub at_coverage: Option<AtCoveragePlan>,
    /// Failed clock resynchronizations.
    pub resync_violation: Option<ResyncViolationPlan>,
    /// Valid-CRC checkpoint corruption.
    pub byzantine: Option<ByzantinePlan>,
}

impl RegimePlan {
    /// The masked regime: no injection on any axis.
    pub fn none() -> Self {
        RegimePlan::default()
    }

    /// True if any axis is armed (the run can leave the masked regime).
    pub fn is_unmasked(&self) -> bool {
        self.bad_messages.is_some()
            || self.at_coverage.is_some()
            || self.resync_violation.is_some()
            || self.byzantine.is_some()
    }

    /// True if classifying this plan's runs needs an oracle device stream:
    /// corruption can reach the device only via AT false negatives or
    /// valid-CRC checkpoint corruption.
    pub fn needs_oracle(&self) -> bool {
        self.byzantine.is_some()
            || (self.bad_messages.is_some() && self.at_coverage.is_some_and(|c| c.coverage < 1.0))
    }

    /// Structural validation: probabilities in `[0, 1]`, node indices mapped
    /// by [`NodeId`], violation excess positive.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found; plans are small enough
    /// that one error at a time is fine.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if let Some(b) = &self.bad_messages {
            check_rate("bad-message rate", b.rate)?;
        }
        if let Some(c) = &self.at_coverage {
            check_rate("AT coverage", c.coverage)?;
        }
        if let Some(r) = &self.resync_violation {
            if NodeId::from_index(r.node).is_none() {
                return Err(FaultPlanError::NodeOutOfRange { node: r.node });
            }
            if r.excess == SimDuration::ZERO {
                return Err(FaultPlanError::RateOutOfRange {
                    what: "resync excess (must be positive)",
                    value: 0.0,
                });
            }
        }
        if let Some(b) = &self.byzantine {
            if NodeId::from_index(b.node).is_none() {
                return Err(FaultPlanError::NodeOutOfRange { node: b.node });
            }
        }
        Ok(())
    }
}

fn check_rate(what: &'static str, value: f64) -> Result<(), FaultPlanError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultPlanError::RateOutOfRange { what, value })
    }
}

/// The Byzantine-lite corruption primitive: decode `ckpt`'s payload, flip
/// value bits in the application state (`acc ^= CORRUPTION_MASK`), and
/// re-encode the record under the same sequence number and label — so its
/// CRC, and every downstream integrity check, is freshly *valid*. Returns
/// `None` when the payload or application state does not decode (the record
/// is left alone; a format flip would be caught, which is not this regime).
pub fn corrupt_checkpoint_value(ckpt: &Checkpoint) -> Option<Checkpoint> {
    let mut payload = CheckpointPayload::from_checkpoint(ckpt).ok()?;
    let mut state = crate::app::CounterApp::decode_state(&payload.app)?;
    state.acc ^= u64::from(CORRUPTION_MASK);
    payload.app = synergy_codec::to_bytes(&state).ok()?.into();
    payload
        .to_checkpoint(ckpt.seq(), ckpt.label().to_string())
        .ok()
}

/// One corrupt external payload that reached the device: where in the stream,
/// and the first byte that differs from the oracle run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EscapeRecord {
    /// Zero-based index in the device message stream.
    pub index: usize,
    /// Offset of the first divergent byte within that payload (payload length
    /// if one stream's payload is a strict prefix of the other's).
    pub offset: usize,
}

impl fmt::Display for EscapeRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg[{}]+{}", self.index, self.offset)
    }
}

/// Diffs an observed device stream against an oracle stream, returning one
/// [`EscapeRecord`] per divergent message. A length mismatch between streams
/// is reported as a single record at the first missing/extra index.
pub fn diff_device_streams(observed: &[Vec<u8>], oracle: &[Vec<u8>]) -> Vec<EscapeRecord> {
    let mut escapes = Vec::new();
    let shared = observed.len().min(oracle.len());
    for (index, (got, want)) in observed.iter().zip(oracle.iter()).enumerate() {
        if got != want {
            let offset = got
                .iter()
                .zip(want.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| got.len().min(want.len()));
            escapes.push(EscapeRecord { index, offset });
        }
    }
    if observed.len() != oracle.len() {
        escapes.push(EscapeRecord {
            index: shared,
            offset: 0,
        });
    }
    escapes
}

/// Filters a device-stream diff down to records carrying the injected
/// corruption signature: same length, exactly one differing byte, and that
/// byte flipped by [`CORRUPTION_MASK`].
///
/// A takeover re-times the workload, so the observed trajectory can diverge
/// from the oracle for benign reasons after the shadow promotes; those diffs
/// touch the value *and* checksum bytes at once and never match the
/// single-byte-xor signature, while an escaped corrupt payload (payload-only
/// flip, application state untouched) always does.
pub fn filter_injected_escapes(
    diff: Vec<EscapeRecord>,
    observed: &[Vec<u8>],
    oracle: &[Vec<u8>],
) -> Vec<EscapeRecord> {
    diff.into_iter()
        .filter(|rec| {
            let (Some(got), Some(want)) = (observed.get(rec.index), oracle.get(rec.index)) else {
                return false;
            };
            got.len() == want.len()
                && got
                    .iter()
                    .zip(want.iter())
                    .filter(|(a, b)| a != b)
                    .all(|(a, b)| a == &(b ^ CORRUPTION_MASK))
                && got.iter().zip(want.iter()).filter(|(a, b)| a != b).count() == 1
        })
        .collect()
}

/// How a run under an unmasked-regime plan resolved. Exactly one verdict per
/// campaign; precedence runs worst-first (an escape outranks a flag outranks a
/// recovery), so a campaign that both recovered and leaked is an escape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegimeVerdict {
    /// Nothing left the masked regime: no catches, no flags, no escapes.
    Masked,
    /// Faults were caught by the acceptance test and the system recovered
    /// (shadow takeover or hardware restart); no escapes, no open flags.
    DetectedAndRecovered,
    /// A property violation was detected and flagged by the checkers (e.g.
    /// the δ bound or a stale epoch line) — detection without full recovery,
    /// or a catch that never completed recovery.
    DetectedAndFlagged,
    /// Corrupt data reached the device (or survived behind a valid CRC) and
    /// was counted and localized against the oracle. Never silent.
    DocumentedEscape,
}

impl RegimeVerdict {
    /// Classifies a finished run from its evidence: the regime counters on
    /// `verdicts` plus whether any recovery (software or hardware) completed.
    pub fn classify(verdicts: &Verdicts, recovered: bool) -> Self {
        if verdicts.at_escapes > 0 || !verdicts.escapes.is_empty() {
            RegimeVerdict::DocumentedEscape
        } else if !verdicts.all_hold() {
            RegimeVerdict::DetectedAndFlagged
        } else if verdicts.at_catches > 0 {
            if recovered {
                RegimeVerdict::DetectedAndRecovered
            } else {
                RegimeVerdict::DetectedAndFlagged
            }
        } else {
            RegimeVerdict::Masked
        }
    }

    /// Stable machine-readable name (used in chaos reports and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            RegimeVerdict::Masked => "masked",
            RegimeVerdict::DetectedAndRecovered => "detected-and-recovered",
            RegimeVerdict::DetectedAndFlagged => "detected-and-flagged",
            RegimeVerdict::DocumentedEscape => "documented-escape",
        }
    }

    /// Inverse of [`name`](Self::name), for reproducing a campaign from a
    /// shrinker report.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "masked" => Some(RegimeVerdict::Masked),
            "detected-and-recovered" => Some(RegimeVerdict::DetectedAndRecovered),
            "detected-and-flagged" => Some(RegimeVerdict::DetectedAndFlagged),
            "documented-escape" => Some(RegimeVerdict::DocumentedEscape),
            _ => None,
        }
    }
}

impl fmt::Display for RegimeVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Host-side injection state for the bad-message / AT-coverage axes. Lives on
/// the active `ProcessHost` only; draws come from the seeded `"regime"`
/// stream so sweeps are deterministic per (seed, plan).
#[derive(Debug)]
pub struct RegimeInjector {
    rate: f64,
    coverage: f64,
    armed: bool,
    rng: DetRng,
}

impl RegimeInjector {
    /// Builds an injector from the plan's knobs; `coverage` defaults to the
    /// real AT (1.0) when no [`AtCoveragePlan`] is present.
    pub fn new(rate: f64, coverage: f64, rng: DetRng) -> Self {
        RegimeInjector {
            rate,
            coverage,
            armed: false,
            rng,
        }
    }

    /// Arms the injector (called when the plan's `after` instant passes).
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// True once [`arm`](Self::arm) has been called.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Draws whether the next external payload is corrupted. Always draws
    /// once armed (keeping the stream position independent of outcomes).
    pub fn draw_corrupt(&mut self) -> bool {
        self.armed && self.rng.gen_bool(self.rate)
    }

    /// Draws whether the acceptance test catches a corrupt payload (a miss is
    /// a false negative: the corruption escapes to the device).
    pub fn draw_caught(&mut self) -> bool {
        self.rng.gen_bool(self.coverage)
    }
}

/// Aggregated evidence and verdict for one regime run (and its oracle twin
/// when the plan needs one). Everything a report needs to be reproducible:
/// counters, localized escapes, and detection latency.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeReport {
    /// The single verdict this run classifies into.
    pub verdict: RegimeVerdict,
    /// Corrupt payloads the acceptance test caught.
    pub at_catches: u64,
    /// Corrupt payloads the acceptance test missed (false negatives).
    pub at_escapes: u64,
    /// Resynchronizations that left the fleet outside the δ bound.
    pub resync_violations: u64,
    /// Hardware recoveries whose epoch line was computed under a violated
    /// clock bound (provably stale).
    pub stale_epoch_lines: u64,
    /// Valid-CRC checkpoint corruptions injected.
    pub byz_corruptions: u64,
    /// Escapes localized against the oracle device stream.
    pub escapes: Vec<EscapeRecord>,
    /// True-time latency from regime activation to the first AT catch.
    pub detection_latency_secs: Option<f64>,
    /// Device messages delivered in the observed run.
    pub device_messages: usize,
    /// Checker violations flagged (count; details stay on `Verdicts`).
    pub violations: usize,
}

impl RegimeReport {
    /// First escaped/divergent payload offset, for the shrinker report.
    pub fn first_escape(&self) -> Option<EscapeRecord> {
        self.escapes.first().copied()
    }
}

/// Runs one mission under its regime plan and classifies the outcome.
///
/// When the plan can leak corrupt data past every detector
/// ([`RegimePlan::needs_oracle`]), a fault-free oracle twin of the same
/// configuration runs alongside and its device stream is diffed against the
/// observed one; each divergence is counted and localized as an
/// [`EscapeRecord`] so escapes are documented, never silent.
pub fn run_regime_mission(cfg: &crate::config::SystemConfig) -> RegimeReport {
    let outcome = crate::system::Mission::new(cfg.clone()).run();
    let mut verdicts = outcome.verdicts;
    if cfg.regime.needs_oracle() {
        let oracle = crate::system::Mission::new(cfg.oracle()).run();
        let diff = diff_device_streams(&outcome.device_stream, &oracle.device_stream);
        // A Byzantine lie surfaces as arbitrary post-recovery divergence, so
        // every diff record is evidence. Payload-only escapes must match the
        // corruption signature — anything else is takeover-retiming noise.
        let escapes = if cfg.regime.byzantine.is_some() {
            diff
        } else {
            filter_injected_escapes(diff, &outcome.device_stream, &oracle.device_stream)
        };
        verdicts.escapes.extend(escapes);
    }
    let recovered = outcome.metrics.software_recoveries + outcome.metrics.hardware_recoveries > 0;
    let verdict = RegimeVerdict::classify(&verdicts, recovered);
    RegimeReport {
        verdict,
        at_catches: verdicts.at_catches,
        at_escapes: verdicts.at_escapes,
        resync_violations: verdicts.resync_violations,
        stale_epoch_lines: verdicts.stale_epoch_lines,
        byz_corruptions: verdicts.byz_corruptions,
        escapes: verdicts.escapes,
        detection_latency_secs: outcome.metrics.regime_detection_secs,
        device_messages: outcome.device_messages,
        violations: verdicts.violations.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Violation;

    fn verdicts() -> Verdicts {
        Verdicts::default()
    }

    #[test]
    fn masked_run_classifies_masked() {
        assert_eq!(
            RegimeVerdict::classify(&verdicts(), false),
            RegimeVerdict::Masked
        );
        // A masked-regime recovery (plain hardware fault) is still masked:
        // nothing was *detected* by the AT and nothing was flagged.
        assert_eq!(
            RegimeVerdict::classify(&verdicts(), true),
            RegimeVerdict::Masked
        );
    }

    #[test]
    fn at_hit_with_recovery_is_detected_and_recovered() {
        let mut v = verdicts();
        v.at_catches = 3;
        assert_eq!(
            RegimeVerdict::classify(&v, true),
            RegimeVerdict::DetectedAndRecovered
        );
    }

    #[test]
    fn at_hit_without_recovery_is_flagged_not_recovered() {
        let mut v = verdicts();
        v.at_catches = 1;
        assert_eq!(
            RegimeVerdict::classify(&v, false),
            RegimeVerdict::DetectedAndFlagged
        );
    }

    #[test]
    fn at_escape_outranks_catch_and_recovery() {
        let mut v = verdicts();
        v.at_catches = 5;
        v.at_escapes = 1;
        assert_eq!(
            RegimeVerdict::classify(&v, true),
            RegimeVerdict::DocumentedEscape
        );
    }

    #[test]
    fn localized_escape_alone_is_documented_escape() {
        let mut v = verdicts();
        v.escapes.push(EscapeRecord {
            index: 4,
            offset: 16,
        });
        assert_eq!(
            RegimeVerdict::classify(&v, true),
            RegimeVerdict::DocumentedEscape
        );
    }

    #[test]
    fn violation_is_detected_and_flagged() {
        let mut v = verdicts();
        v.violations.push(Violation {
            property: "clock-sync",
            detail: "deviation beyond delta".into(),
        });
        v.resync_violations = 1;
        assert_eq!(
            RegimeVerdict::classify(&v, true),
            RegimeVerdict::DetectedAndFlagged
        );
    }

    #[test]
    fn verdict_names_roundtrip() {
        for v in [
            RegimeVerdict::Masked,
            RegimeVerdict::DetectedAndRecovered,
            RegimeVerdict::DetectedAndFlagged,
            RegimeVerdict::DocumentedEscape,
        ] {
            assert_eq!(RegimeVerdict::parse(v.name()), Some(v));
        }
        assert_eq!(RegimeVerdict::parse("nonsense"), None);
    }

    #[test]
    fn diff_localizes_divergent_bytes() {
        let oracle = vec![vec![1u8, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let mut observed = oracle.clone();
        observed[1][2] ^= CORRUPTION_MASK;
        let escapes = diff_device_streams(&observed, &oracle);
        assert_eq!(
            escapes,
            vec![EscapeRecord {
                index: 1,
                offset: 2
            }]
        );
    }

    #[test]
    fn diff_reports_length_mismatch_once() {
        let oracle = vec![vec![1u8], vec![2]];
        let observed = vec![vec![1u8]];
        let escapes = diff_device_streams(&observed, &oracle);
        assert_eq!(
            escapes,
            vec![EscapeRecord {
                index: 1,
                offset: 0
            }]
        );
    }

    #[test]
    fn diff_of_identical_streams_is_empty() {
        let s = vec![vec![9u8, 9], vec![8, 8]];
        assert!(diff_device_streams(&s, &s).is_empty());
    }

    #[test]
    fn prefix_payload_reports_offset_at_shared_length() {
        let oracle = vec![vec![1u8, 2, 3]];
        let observed = vec![vec![1u8, 2]];
        let escapes = diff_device_streams(&observed, &oracle);
        assert_eq!(
            escapes,
            vec![EscapeRecord {
                index: 0,
                offset: 2
            }]
        );
    }

    #[test]
    fn plan_validation_rejects_bad_rates_and_nodes() {
        let mut plan = RegimePlan::none();
        assert!(plan.validate().is_ok());
        assert!(!plan.is_unmasked());

        plan.bad_messages = Some(BadMessagePlan {
            after: SimTime::from_secs_f64(1.0),
            rate: 1.5,
        });
        assert!(matches!(
            plan.validate(),
            Err(FaultPlanError::RateOutOfRange { .. })
        ));
        plan.bad_messages = None;

        plan.byzantine = Some(ByzantinePlan {
            at: SimTime::from_secs_f64(1.0),
            node: 7,
        });
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::NodeOutOfRange { node: 7 })
        );
        plan.byzantine = None;

        plan.resync_violation = Some(ResyncViolationPlan {
            after: SimTime::from_secs_f64(1.0),
            excess: SimDuration::from_nanos(0),
            node: 0,
        });
        assert!(plan.validate().is_err());
    }

    #[test]
    fn oracle_needed_only_when_escapes_are_possible() {
        let mut plan = RegimePlan::none();
        assert!(!plan.needs_oracle());
        plan.bad_messages = Some(BadMessagePlan {
            after: SimTime::from_secs_f64(1.0),
            rate: 0.5,
        });
        // Full-coverage AT: corruption cannot reach the device.
        assert!(!plan.needs_oracle());
        plan.at_coverage = Some(AtCoveragePlan { coverage: 0.4 });
        assert!(plan.needs_oracle());
        plan.at_coverage = Some(AtCoveragePlan { coverage: 1.0 });
        assert!(!plan.needs_oracle());
        plan.byzantine = Some(ByzantinePlan {
            at: SimTime::from_secs_f64(2.0),
            node: 2,
        });
        assert!(plan.needs_oracle());
    }

    #[test]
    fn injector_draws_are_deterministic_per_seed() {
        let draws = |seed: u64| {
            let root = DetRng::new(seed);
            let mut inj = RegimeInjector::new(0.5, 0.5, root.stream("regime"));
            inj.arm();
            (0..32)
                .map(|_| (inj.draw_corrupt(), inj.draw_caught()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn unarmed_injector_never_corrupts() {
        let root = DetRng::new(1);
        let mut inj = RegimeInjector::new(1.0, 1.0, root.stream("regime"));
        assert!(!inj.draw_corrupt());
        inj.arm();
        assert!(inj.draw_corrupt());
    }
}
